// Package active implements a minimal active (state-machine) replication
// service over the same protocol stack RTPB uses. It is the comparison
// baseline the paper's related-work section contrasts passive replication
// against, and the substrate for its "hybrid active/passive" future-work
// direction: "schemes based on active replication tend to have more
// overhead in responding to client requests since an agreement protocol
// must be performed to ensure atomic ordered delivery of messages to all
// replicas."
//
// The design is a sequencer-based atomic broadcast, the shape used by the
// real-time process-group systems the paper cites (MARS, RTCAST):
//
//   - a Sequencer replica receives client writes, assigns each a global
//     sequence number, and multicasts an Order to every Member;
//   - Members apply orders strictly in sequence (a hold-back queue covers
//     reordering) and acknowledge each;
//   - the Sequencer replies to the client only after every member has
//     acknowledged — atomic, ordered delivery — and retransmits unacked
//     orders on a timer, so message loss translates into client-visible
//     latency rather than inconsistency.
//
// That last property is exactly the trade the paper's RTPB makes in the
// opposite direction, and the experiments compare the two.
package active

import (
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/cpu"
	"rtpb/internal/wire"
	"rtpb/internal/xkernel"
)

// ActivePort is the well-known port the active-replication protocol is
// enabled on (distinct from RTPB's so both can share a stack).
const ActivePort uint16 = 7100

// Config configures a Sequencer or Member.
type Config struct {
	// Clock drives all timers; required.
	Clock clock.Clock
	// Port is the port protocol to enable on; required.
	Port *xkernel.PortProtocol
	// LocalPort defaults to ActivePort.
	LocalPort uint16
	// Members are the member replicas' addresses (sequencer only).
	Members []xkernel.Addr
	// Sequencer is the sequencer's address (member only).
	Sequencer xkernel.Addr
	// RetransmitInterval is how often unacked orders are re-multicast;
	// defaults to 20ms.
	RetransmitInterval time.Duration
	// Costs is the CPU cost model; zero value uses core-equivalent
	// defaults.
	ClientOpCost time.Duration
	SendCost     time.Duration
}

func (c *Config) normalize() error {
	if c.Clock == nil {
		return fmt.Errorf("active: config needs a Clock")
	}
	if c.Port == nil {
		return fmt.Errorf("active: config needs a Port protocol")
	}
	if c.LocalPort == 0 {
		c.LocalPort = ActivePort
	}
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 20 * time.Millisecond
	}
	if c.ClientOpCost <= 0 {
		c.ClientOpCost = 200 * time.Microsecond
	}
	if c.SendCost <= 0 {
		c.SendCost = 400 * time.Microsecond
	}
	return nil
}

type pendingOrder struct {
	order   *wire.Order
	waiting map[xkernel.Addr]bool
	done    func(latency time.Duration, err error)
	start   time.Time
	retry   *clock.Event
}

// Sequencer is the active-replication leader: it owns the total order.
type Sequencer struct {
	cfg     Config
	clk     clock.Clock
	proc    *cpu.Resource
	port    *xkernel.PortProtocol
	members map[xkernel.Addr]xkernel.Session

	objects map[string]uint32
	byID    map[uint32]*objectState
	nextID  uint32

	nextSeq uint64
	pending map[uint64]*pendingOrder
	running bool

	// OnCommit, when set, observes every fully acknowledged order.
	OnCommit func(seq uint64, objectID uint32)
}

type objectState struct {
	name    string
	value   []byte
	version time.Time
	hasData bool
}

var _ xkernel.Upper = (*Sequencer)(nil)

// NewSequencer builds the leader replica.
func NewSequencer(cfg Config) (*Sequencer, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("active: sequencer needs at least one member")
	}
	s := &Sequencer{
		cfg:     cfg,
		clk:     cfg.Clock,
		proc:    cpu.New(cfg.Clock),
		port:    cfg.Port,
		members: make(map[xkernel.Addr]xkernel.Session, len(cfg.Members)),
		objects: make(map[string]uint32),
		byID:    make(map[uint32]*objectState),
		pending: make(map[uint64]*pendingOrder),
		nextID:  1,
		running: true,
	}
	if err := cfg.Port.EnablePort(cfg.LocalPort, s); err != nil {
		return nil, err
	}
	for _, addr := range cfg.Members {
		sess, err := cfg.Port.OpenFrom(cfg.LocalPort, addr)
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("active: open member session: %w", err)
		}
		s.members[addr] = sess
	}
	return s, nil
}

// Stop releases the port binding and abandons pending orders.
func (s *Sequencer) Stop() {
	if !s.running {
		return
	}
	s.running = false
	s.port.DisablePort(s.cfg.LocalPort)
	for _, p := range s.pending {
		if p.retry != nil {
			p.retry.Cancel()
		}
	}
	for _, sess := range s.members {
		sess.Close()
	}
}

// Register declares an object. Active replication has no
// temporal-consistency admission control — every replica applies every
// write — which is precisely its cost.
func (s *Sequencer) Register(name string) (uint32, error) {
	if !s.running {
		return 0, fmt.Errorf("active: sequencer stopped")
	}
	if id, dup := s.objects[name]; dup {
		return id, nil
	}
	id := s.nextID
	s.nextID++
	s.objects[name] = id
	s.byID[id] = &objectState{name: name}
	return id, nil
}

// ClientWrite services one client write with atomic ordered delivery:
// done fires only after every member has acknowledged the order.
func (s *Sequencer) ClientWrite(name string, data []byte, done func(latency time.Duration, err error)) {
	finish := func(lat time.Duration, err error) {
		if done != nil {
			done(lat, err)
		}
	}
	if !s.running {
		finish(0, fmt.Errorf("active: sequencer stopped"))
		return
	}
	id, ok := s.objects[name]
	if !ok {
		finish(0, fmt.Errorf("active: unknown object %q", name))
		return
	}
	arrival := s.clk.Now()
	value := make([]byte, len(data))
	copy(value, data)
	s.proc.Submit(cpu.Low, s.cfg.ClientOpCost, func() {
		o := s.byID[id]
		o.value = value
		o.version = arrival
		o.hasData = true
		s.nextSeq++
		p := &pendingOrder{
			order: &wire.Order{
				Seq:      s.nextSeq,
				ObjectID: id,
				Version:  arrival.UnixNano(),
				Payload:  value,
			},
			waiting: make(map[xkernel.Addr]bool, len(s.members)),
			done:    done,
			start:   arrival,
		}
		for addr := range s.members {
			p.waiting[addr] = true
		}
		s.pending[p.order.Seq] = p
		s.multicast(p)
	})
}

// multicast pays the per-member send cost and transmits the order, then
// arms the retransmission timer.
func (s *Sequencer) multicast(p *pendingOrder) {
	if !s.running {
		return
	}
	cost := time.Duration(len(p.waiting)) * s.cfg.SendCost
	s.proc.Submit(cpu.Low, cost, func() {
		if !s.running {
			return
		}
		encoded := wire.Encode(p.order)
		for addr := range p.waiting {
			if sess, ok := s.members[addr]; ok {
				_ = sess.Push(xkernel.NewMessage(encoded))
			}
		}
		p.retry = s.clk.Schedule(s.cfg.RetransmitInterval, func() {
			if _, still := s.pending[p.order.Seq]; still {
				s.multicast(p)
			}
		})
	})
}

// Demux implements xkernel.Upper.
func (s *Sequencer) Demux(m *xkernel.Message, from xkernel.Addr) error {
	msg, err := wire.Decode(m.Bytes())
	if err != nil {
		return err
	}
	ack, ok := msg.(*wire.OrderAck)
	if !ok {
		return nil
	}
	p, ok := s.pending[ack.Seq]
	if !ok {
		return nil // duplicate ack after commit
	}
	delete(p.waiting, from)
	if len(p.waiting) > 0 {
		return nil
	}
	delete(s.pending, ack.Seq)
	if p.retry != nil {
		p.retry.Cancel()
	}
	if s.OnCommit != nil {
		s.OnCommit(ack.Seq, p.order.ObjectID)
	}
	if p.done != nil {
		p.done(s.clk.Now().Sub(p.start), nil)
	}
	return nil
}

// Pending reports the number of uncommitted orders.
func (s *Sequencer) Pending() int { return len(s.pending) }

// Value returns the sequencer's current copy of an object.
func (s *Sequencer) Value(name string) (data []byte, version time.Time, ok bool) {
	id, found := s.objects[name]
	if !found || !s.byID[id].hasData {
		return nil, time.Time{}, false
	}
	o := s.byID[id]
	cp := make([]byte, len(o.value))
	copy(cp, o.value)
	return cp, o.version, true
}

// Member is an active-replication follower: it applies totally ordered
// writes and acknowledges each.
type Member struct {
	cfg     Config
	port    *xkernel.PortProtocol
	sess    xkernel.Session
	applied uint64
	hold    map[uint64]*wire.Order
	objects map[uint32]*objectState
	names   map[uint32]string
	running bool

	// OnApply, when set, observes every in-order application.
	OnApply func(seq uint64, objectID uint32, version, at time.Time)
}

var _ xkernel.Upper = (*Member)(nil)

// NewMember builds a follower replica.
func NewMember(cfg Config) (*Member, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Sequencer == "" {
		return nil, fmt.Errorf("active: member needs the sequencer's address")
	}
	m := &Member{
		cfg:     cfg,
		port:    cfg.Port,
		hold:    make(map[uint64]*wire.Order),
		objects: make(map[uint32]*objectState),
		names:   make(map[uint32]string),
		running: true,
	}
	if err := cfg.Port.EnablePort(cfg.LocalPort, m); err != nil {
		return nil, err
	}
	sess, err := cfg.Port.OpenFrom(cfg.LocalPort, cfg.Sequencer)
	if err != nil {
		cfg.Port.DisablePort(cfg.LocalPort)
		return nil, fmt.Errorf("active: open sequencer session: %w", err)
	}
	m.sess = sess
	return m, nil
}

// Stop releases the port binding.
func (m *Member) Stop() {
	if !m.running {
		return
	}
	m.running = false
	m.port.DisablePort(m.cfg.LocalPort)
	m.sess.Close()
}

// Demux implements xkernel.Upper.
func (m *Member) Demux(msg *xkernel.Message, from xkernel.Addr) error {
	if !m.running {
		return nil
	}
	decoded, err := wire.Decode(msg.Bytes())
	if err != nil {
		return err
	}
	order, ok := decoded.(*wire.Order)
	if !ok {
		return nil
	}
	// Always ack — the sequencer retransmits until it hears us, so a
	// duplicate means our previous ack was lost.
	_ = m.sess.Push(xkernel.NewMessage(wire.Encode(&wire.OrderAck{Seq: order.Seq})))
	if order.Seq <= m.applied {
		return nil
	}
	m.hold[order.Seq] = order
	// Drain the hold-back queue in strict sequence order.
	for {
		next, ok := m.hold[m.applied+1]
		if !ok {
			return nil
		}
		delete(m.hold, m.applied+1)
		m.applied++
		o, exists := m.objects[next.ObjectID]
		if !exists {
			o = &objectState{}
			m.objects[next.ObjectID] = o
		}
		o.value = append(o.value[:0], next.Payload...)
		o.version = time.Unix(0, next.Version)
		o.hasData = true
		if m.OnApply != nil {
			m.OnApply(next.Seq, next.ObjectID, o.version, m.cfg.Clock.Now())
		}
	}
}

// Applied reports the highest contiguously applied sequence number.
func (m *Member) Applied() uint64 { return m.applied }

// HoldbackLen reports the number of out-of-order orders waiting.
func (m *Member) HoldbackLen() int { return len(m.hold) }

// Value returns the member's current copy of an object by id.
func (m *Member) Value(id uint32) (data []byte, version time.Time, ok bool) {
	o, found := m.objects[id]
	if !found || !o.hasData {
		return nil, time.Time{}, false
	}
	cp := make([]byte, len(o.value))
	copy(cp, o.value)
	return cp, o.version, true
}
