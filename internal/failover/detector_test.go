package failover

import (
	"os"
	"testing"
	"time"

	"rtpb/internal/clock"
)

// osWriteFile is aliased for the corrupt-file test helper.
var osWriteFile = os.WriteFile

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func cfg() DetectorConfig {
	return DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 3}
}

func TestDetectorConfigValidate(t *testing.T) {
	if err := DefaultDetectorConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []DetectorConfig{
		{Interval: 0, Timeout: ms(1), MaxMisses: 1},
		{Interval: ms(1), Timeout: 0, MaxMisses: 1},
		{Interval: ms(1), Timeout: ms(1), MaxMisses: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted", c)
		}
	}
	if _, err := NewDetector(clock.NewSim(), DetectorConfig{}, nil, nil); err == nil {
		t.Fatal("NewDetector accepted zero config")
	}
}

func TestDetectorStaysAliveWithAcks(t *testing.T) {
	clk := clock.NewSim()
	var d *Detector
	seq := uint64(0)
	send := func() uint64 {
		seq++
		s := seq
		clk.Schedule(ms(5), func() { d.OnAck(s) }) // peer answers in 5ms
		return s
	}
	dead := false
	d, err := NewDetector(clk, cfg(), send, func() { dead = true })
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	clk.RunFor(2 * time.Second)
	if dead || !d.Alive() {
		t.Fatal("peer declared dead despite prompt acks")
	}
	if seq < 30 {
		t.Fatalf("only %d pings in 2s at 50ms interval", seq)
	}
	d.Stop()
}

func TestDetectorDeclaresDeadAfterMaxMisses(t *testing.T) {
	clk := clock.NewSim()
	pings := 0
	send := func() uint64 { pings++; return uint64(pings) } // never acked
	var deadAt time.Duration = -1
	d, err := NewDetector(clk, cfg(), send, func() {
		deadAt = clk.Now().Sub(clock.SimEpoch)
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	clk.RunFor(time.Second)
	if deadAt < 0 {
		t.Fatal("silent peer never declared dead")
	}
	// Three timeouts of 30ms chained by immediate resends: dead at 90ms.
	if deadAt != ms(90) {
		t.Fatalf("declared dead at %v, want 90ms", deadAt)
	}
	if pings != 3 {
		t.Fatalf("sent %d pings before declaring dead, want 3 (retry per timeout)", pings)
	}
	if d.Alive() || d.Running() {
		t.Fatal("detector still alive/running after declaring dead")
	}
}

func TestDetectorRecoversAfterTransientSilence(t *testing.T) {
	clk := clock.NewSim()
	mute := true
	var d *Detector
	send := func() uint64 {
		s := uint64(clk.Now().UnixNano())
		if !mute {
			clk.Schedule(ms(5), func() { d.OnAck(s) })
		}
		return s
	}
	dead := false
	d, err := NewDetector(clk, cfg(), send, func() { dead = true })
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	clk.RunFor(ms(40)) // one miss (timeout at 30ms), not dead yet
	if d.Misses() == 0 {
		t.Fatal("no miss recorded during silence")
	}
	mute = false
	clk.RunFor(time.Second)
	if dead {
		t.Fatal("declared dead after transient silence shorter than MaxMisses")
	}
	if d.Misses() != 0 {
		t.Fatalf("misses = %d after recovery, want 0", d.Misses())
	}
}

func TestDetectorStaleAckCountsAsLife(t *testing.T) {
	clk := clock.NewSim()
	var sent []uint64
	send := func() uint64 {
		s := uint64(len(sent) + 1)
		sent = append(sent, s)
		return s
	}
	dead := false
	d, err := NewDetector(clk, cfg(), send, func() { dead = true })
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	// Ack each ping late, after its timeout fired (stale seq).
	clk.Schedule(ms(35), func() { d.OnAck(1) })
	clk.Schedule(ms(95), func() { d.OnAck(2) })
	clk.Schedule(ms(155), func() { d.OnAck(3) })
	clk.RunFor(ms(200))
	if dead {
		t.Fatal("declared dead although stale acks kept arriving")
	}
	d.Stop()
}

func TestDetectorResetAfterDeath(t *testing.T) {
	clk := clock.NewSim()
	send := func() uint64 { return 1 }
	dead := 0
	d, err := NewDetector(clk, cfg(), send, func() { dead++ })
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	clk.RunFor(time.Second)
	if dead != 1 {
		t.Fatalf("onDead fired %d times, want 1", dead)
	}
	d.Reset()
	if !d.Alive() {
		t.Fatal("not alive after Reset")
	}
	d.Start()
	clk.RunFor(ms(10))
	d.Stop()
	d.Stop() // idempotent
}

func TestDetectorStopCancelsTimeout(t *testing.T) {
	clk := clock.NewSim()
	send := func() uint64 { return 7 }
	dead := false
	d, err := NewDetector(clk, cfg(), send, func() { dead = true })
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	clk.RunFor(ms(10))
	d.Stop()
	clk.RunFor(time.Second)
	if dead {
		t.Fatal("onDead fired after Stop")
	}
}

func TestFileNameServicePersistsAcrossReopen(t *testing.T) {
	path := t.TempDir() + "/names.json"
	ns, err := OpenFileNameService(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ns.Lookup("svc"); ok {
		t.Fatal("fresh file has entries")
	}
	if err := ns.Set("svc", "primary:7000", 1); err != nil {
		t.Fatal(err)
	}
	if err := ns.Set("svc", "backup:7000", 2); err != nil {
		t.Fatal(err)
	}
	// Reopen: the takeover survives the restart.
	ns2, err := OpenFileNameService(path)
	if err != nil {
		t.Fatal(err)
	}
	addr, epoch, ok := ns2.Lookup("svc")
	if !ok || addr != "backup:7000" || epoch != 2 {
		t.Fatalf("reopened entry = %v %d %v", addr, epoch, ok)
	}
	// Fencing still applies after reopen.
	if err := ns2.Set("svc", "zombie:7000", 1); err != ErrStaleEpoch {
		t.Fatalf("stale Set after reopen = %v, want ErrStaleEpoch", err)
	}
	// Same-epoch idempotent re-assert is allowed.
	if err := ns2.Set("svc", "backup:7000", 2); err != nil {
		t.Fatalf("idempotent Set = %v", err)
	}
}

func TestFileNameServiceRejectsCorruptFile(t *testing.T) {
	path := t.TempDir() + "/names.json"
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileNameService(path); err == nil {
		t.Fatal("corrupt name file accepted")
	}
}

func writeFile(path, content string) error {
	return osWriteFile(path, []byte(content), 0o644)
}

func TestNameService(t *testing.T) {
	ns := NewNameService()
	if _, _, ok := ns.Lookup("svc"); ok {
		t.Fatal("lookup on empty directory succeeded")
	}
	if err := ns.Set("svc", "primary:7000", 1); err != nil {
		t.Fatal(err)
	}
	addr, epoch, ok := ns.Lookup("svc")
	if !ok || addr != "primary:7000" || epoch != 1 {
		t.Fatalf("Lookup = %v %d %v", addr, epoch, ok)
	}
	// A newer epoch wins; a stale one is rejected.
	if err := ns.Set("svc", "backup:7000", 2); err != nil {
		t.Fatal(err)
	}
	if err := ns.Set("svc", "zombie:7000", 1); err != ErrStaleEpoch {
		t.Fatalf("stale Set err = %v, want ErrStaleEpoch", err)
	}
	if err := ns.Set("svc", "other:7000", 2); err != ErrStaleEpoch {
		t.Fatalf("same-epoch different-addr Set err = %v, want ErrStaleEpoch", err)
	}
	// Idempotent re-assertion is fine.
	if err := ns.Set("svc", "backup:7000", 2); err != nil {
		t.Fatalf("idempotent Set err = %v", err)
	}
	addr, epoch, _ = ns.Lookup("svc")
	if addr != "backup:7000" || epoch != 2 {
		t.Fatalf("final entry = %v %d", addr, epoch)
	}
}
