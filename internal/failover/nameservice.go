package failover

import (
	"errors"
	"sort"
	"sync"

	"rtpb/internal/xkernel"
)

// NameService is the replicated-service directory of Section 4.4: after a
// takeover "the new primary changes the address in the name file to its
// own internet address". Clients and recruits look the current primary up
// here. Entries are fenced by epoch so a stale replica cannot clobber a
// newer takeover.
//
// NameService is safe for concurrent use (the real-UDP daemons query it
// from different event loops); in simulations all access is on the one
// executor and the lock is uncontended.
type NameService struct {
	mu      sync.Mutex
	entries map[string]nameEntry
}

type nameEntry struct {
	addr       xkernel.Addr
	epoch      uint32
	candidates map[xkernel.Addr]bool
}

// ErrStaleEpoch is returned by Set when a newer epoch is already recorded.
var ErrStaleEpoch = errors.New("failover: stale epoch")

// NewNameService returns an empty directory.
func NewNameService() *NameService {
	return &NameService{entries: make(map[string]nameEntry)}
}

// Set records addr as the primary for service at the given epoch. It
// rejects epochs at or below the recorded one, except that re-asserting
// the identical address at the same epoch is allowed (idempotent).
func (ns *NameService) Set(service string, addr xkernel.Addr, epoch uint32) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	cur, ok := ns.entries[service]
	if ok {
		if epoch < cur.epoch || (epoch == cur.epoch && addr != cur.addr) {
			return ErrStaleEpoch
		}
	}
	cur.addr, cur.epoch = addr, epoch
	ns.entries[service] = cur
	return nil
}

// Lookup reports the current primary address and epoch for service.
func (ns *NameService) Lookup(service string) (addr xkernel.Addr, epoch uint32, ok bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e, ok := ns.entries[service]
	return e.addr, e.epoch, ok
}

// AddCandidate implements Candidates: records addr as a recruitable
// replica for service.
func (ns *NameService) AddCandidate(service string, addr xkernel.Addr) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e := ns.entries[service]
	if e.candidates == nil {
		e.candidates = make(map[xkernel.Addr]bool)
	}
	e.candidates[addr] = true
	ns.entries[service] = e
}

// RemoveCandidate implements Candidates.
func (ns *NameService) RemoveCandidate(service string, addr xkernel.Addr) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if e, ok := ns.entries[service]; ok {
		delete(e.candidates, addr)
	}
}

// CandidateList implements Candidates: the registered recruitable
// replicas for service, sorted for deterministic probing order.
func (ns *NameService) CandidateList(service string) []xkernel.Addr {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e := ns.entries[service]
	out := make([]xkernel.Addr, 0, len(e.candidates))
	for a := range e.candidates {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
