package failover

import (
	"errors"
	"sync"

	"rtpb/internal/xkernel"
)

// NameService is the replicated-service directory of Section 4.4: after a
// takeover "the new primary changes the address in the name file to its
// own internet address". Clients and recruits look the current primary up
// here. Entries are fenced by epoch so a stale replica cannot clobber a
// newer takeover.
//
// NameService is safe for concurrent use (the real-UDP daemons query it
// from different event loops); in simulations all access is on the one
// executor and the lock is uncontended.
type NameService struct {
	mu      sync.Mutex
	entries map[string]nameEntry
}

type nameEntry struct {
	addr  xkernel.Addr
	epoch uint32
}

// ErrStaleEpoch is returned by Set when a newer epoch is already recorded.
var ErrStaleEpoch = errors.New("failover: stale epoch")

// NewNameService returns an empty directory.
func NewNameService() *NameService {
	return &NameService{entries: make(map[string]nameEntry)}
}

// Set records addr as the primary for service at the given epoch. It
// rejects epochs at or below the recorded one, except that re-asserting
// the identical address at the same epoch is allowed (idempotent).
func (ns *NameService) Set(service string, addr xkernel.Addr, epoch uint32) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	cur, ok := ns.entries[service]
	if ok {
		if epoch < cur.epoch || (epoch == cur.epoch && addr != cur.addr) {
			return ErrStaleEpoch
		}
	}
	ns.entries[service] = nameEntry{addr: addr, epoch: epoch}
	return nil
}

// Lookup reports the current primary address and epoch for service.
func (ns *NameService) Lookup(service string) (addr xkernel.Addr, epoch uint32, ok bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e, ok := ns.entries[service]
	return e.addr, e.epoch, ok
}
