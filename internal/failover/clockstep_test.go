package failover

import (
	"testing"
	"time"

	"rtpb/internal/clock"
)

// runClockStepScenario drives an adaptive detector on a skewed clock
// through: a healthy ack history, then a 300ms ack outage during which
// the node's wall clock steps forward one second. The outage is well
// inside MaxSilence (500ms) and scores far below the suspicion threshold,
// so a correct detector rides it out; one that measures silence by
// differencing wall-clock readings sees a 1.3s silence and declares a
// live peer dead. It reports whether the detector killed the peer.
func runClockStepScenario(t *testing.T, wallClockElapsed bool) bool {
	t.Helper()
	sim := clock.NewSim()
	skewed := clock.NewSkewed(sim)
	cfg := DetectorConfig{
		Interval:           ms(50),
		Timeout:            ms(30),
		MaxMisses:          3,
		Adaptive:           true,
		SuspicionThreshold: 50,
		MaxSilence:         ms(500),
		WallClockElapsed:   wallClockElapsed,
	}
	var d *Detector
	var seq uint64
	acking := true
	dead := false
	send := func() uint64 {
		seq++
		s := seq
		if acking {
			skewed.Schedule(ms(2), func() { d.OnAck(s) })
		}
		return s
	}
	d, err := NewDetector(skewed, cfg, send, func() { dead = true })
	if err != nil {
		t.Fatal(err)
	}
	d.Start()

	// Build a mature ack history (20 gaps at the 50ms interval).
	sim.RunFor(time.Second)
	if dead {
		t.Fatal("detector died during healthy history build")
	}

	// Ack outage begins; 100ms in, the wall clock steps forward 1s.
	acking = false
	sim.RunFor(100 * time.Millisecond)
	skewed.Step(time.Second)
	sim.RunFor(200 * time.Millisecond)

	// Outage ends after 300ms of true silence.
	acking = true
	sim.RunFor(500 * time.Millisecond)
	return dead
}

// TestDetectorRidesOutClockStep pins the hardened behaviour: measuring
// silence on the monotonic timebase, a forward wall-clock step cannot
// manufacture a failover from a tolerable outage.
func TestDetectorRidesOutClockStep(t *testing.T) {
	if runClockStepScenario(t, false) {
		t.Fatal("hardened detector declared a live peer dead across a wall-clock step")
	}
}

// TestDetectorWallClockElapsedFalseFailover pins the regression the
// hardening fixes: with the WallClockElapsed ablation the identical
// outage-plus-step kills a live peer. If this test starts failing, the
// ablation no longer demonstrates the hazard and the chaos scenario's
// control arm is meaningless.
func TestDetectorWallClockElapsedFalseFailover(t *testing.T) {
	if !runClockStepScenario(t, true) {
		t.Fatal("WallClockElapsed ablation did not reproduce the false failover")
	}
}

// TestDetectorBackwardStepHarmless audits the remaining elapsed-time
// sites against a backward step: the suspicion scorer's gap accounting
// clamps negative gaps, timers are base-time anchored, so a backward
// step during healthy traffic must neither kill the peer nor wedge the
// ping exchange.
func TestDetectorBackwardStepHarmless(t *testing.T) {
	for _, wallClock := range []bool{false, true} {
		sim := clock.NewSim()
		skewed := clock.NewSkewed(sim)
		cfg := DetectorConfig{
			Interval: ms(50), Timeout: ms(30), MaxMisses: 3,
			Adaptive: true, SuspicionThreshold: 8, WallClockElapsed: wallClock,
		}
		var d *Detector
		var seq uint64
		dead := false
		send := func() uint64 {
			seq++
			s := seq
			skewed.Schedule(ms(2), func() { d.OnAck(s) })
			return s
		}
		d, err := NewDetector(skewed, cfg, send, func() { dead = true })
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		sim.RunFor(time.Second)
		skewed.Step(-5 * time.Second)
		sim.RunFor(time.Second)
		if dead {
			t.Fatalf("wallClock=%v: backward step killed a healthy peer", wallClock)
		}
		if lvl := d.SuspicionLevel(); lvl < 0 {
			t.Fatalf("wallClock=%v: negative suspicion level %v after backward step", wallClock, lvl)
		}
		if seq < 30 {
			t.Fatalf("wallClock=%v: ping exchange wedged after backward step (%d pings)", wallClock, seq)
		}
	}
}
