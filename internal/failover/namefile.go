package failover

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"slices"
	"sort"
	"sync"

	"rtpb/internal/xkernel"
)

// Directory is the name-service abstraction: who is the primary of a
// replicated service right now, fenced by epoch. NameService is the
// in-memory implementation for simulations; FileNameService persists to
// the paper's literal "name file" ("the new primary changes the address
// in the name file to its own internet address") for real deployments.
type Directory interface {
	// Set records addr as the primary for service at the given epoch,
	// rejecting stale epochs.
	Set(service string, addr xkernel.Addr, epoch uint32) error
	// Lookup reports the current primary address and epoch for service.
	Lookup(service string) (addr xkernel.Addr, epoch uint32, ok bool)
}

// Candidates is the optional directory extension the repair subsystem
// uses for automated recruitment: idle replicas register themselves as
// recruitable, and a primary that has lost its backup probes the list in
// sorted order. Both bundled Directory implementations support it.
type Candidates interface {
	// AddCandidate records addr as a recruitable replica for service.
	AddCandidate(service string, addr xkernel.Addr)
	// RemoveCandidate withdraws addr from the candidate list.
	RemoveCandidate(service string, addr xkernel.Addr)
	// CandidateList reports the recruitable replicas for service in
	// deterministic (sorted) order.
	CandidateList(service string) []xkernel.Addr
}

// Compile-time interface checks.
var (
	_ Directory  = (*NameService)(nil)
	_ Directory  = (*FileNameService)(nil)
	_ Candidates = (*NameService)(nil)
	_ Candidates = (*FileNameService)(nil)
)

// FileNameService is a Directory persisted as a JSON name file. Every Set
// rewrites the file atomically (write temp + rename), so a crash leaves
// either the old or the new directory, never a torn one.
type FileNameService struct {
	mu      sync.Mutex
	path    string
	entries map[string]fileEntry
}

type fileEntry struct {
	Addr       string   `json:"addr"`
	Epoch      uint32   `json:"epoch"`
	Candidates []string `json:"candidates,omitempty"`
}

// OpenFileNameService loads (or creates) the name file at path.
func OpenFileNameService(path string) (*FileNameService, error) {
	ns := &FileNameService{path: path, entries: make(map[string]fileEntry)}
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh file: created on first Set.
	case err != nil:
		return nil, fmt.Errorf("failover: read name file: %w", err)
	default:
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &ns.entries); err != nil {
				return nil, fmt.Errorf("failover: parse name file %q: %w", path, err)
			}
		}
	}
	return ns, nil
}

// Set implements Directory.
func (ns *FileNameService) Set(service string, addr xkernel.Addr, epoch uint32) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	cur, ok := ns.entries[service]
	if ok {
		if epoch < cur.Epoch || (epoch == cur.Epoch && string(addr) != cur.Addr) {
			return ErrStaleEpoch
		}
	}
	cur.Addr, cur.Epoch = string(addr), epoch
	ns.entries[service] = cur
	return ns.flushLocked()
}

func (ns *FileNameService) flushLocked() error {
	raw, err := json.MarshalIndent(ns.entries, "", "  ")
	if err != nil {
		return fmt.Errorf("failover: encode name file: %w", err)
	}
	tmp := ns.path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("failover: write name file: %w", err)
	}
	if err := os.Rename(tmp, ns.path); err != nil {
		return fmt.Errorf("failover: replace name file: %w", err)
	}
	return nil
}

// Lookup implements Directory.
func (ns *FileNameService) Lookup(service string) (xkernel.Addr, uint32, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e, ok := ns.entries[service]
	return xkernel.Addr(e.Addr), e.Epoch, ok
}

// AddCandidate implements Candidates; the updated list is persisted.
func (ns *FileNameService) AddCandidate(service string, addr xkernel.Addr) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e := ns.entries[service]
	if slices.Contains(e.Candidates, string(addr)) {
		return
	}
	e.Candidates = append(e.Candidates, string(addr))
	sort.Strings(e.Candidates)
	ns.entries[service] = e
	_ = ns.flushLocked()
}

// RemoveCandidate implements Candidates; the updated list is persisted.
func (ns *FileNameService) RemoveCandidate(service string, addr xkernel.Addr) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e, ok := ns.entries[service]
	if !ok || !slices.Contains(e.Candidates, string(addr)) {
		return
	}
	e.Candidates = slices.DeleteFunc(e.Candidates, func(s string) bool { return s == string(addr) })
	ns.entries[service] = e
	_ = ns.flushLocked()
}

// CandidateList implements Candidates.
func (ns *FileNameService) CandidateList(service string) []xkernel.Addr {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e := ns.entries[service]
	out := make([]xkernel.Addr, 0, len(e.Candidates))
	for _, s := range e.Candidates {
		out = append(out, xkernel.Addr(s))
	}
	return out
}
