package failover

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
)

// TestRecruitCarriesSpecsAcrossDoubleFailover is the regression test for
// the spec-less placeholder bug: a backup recruited after the first
// failover learns every object only through the repair protocol (it
// never saw the original registrations), so the JoinAccept and the state
// chunks must carry full specs. Before the fix, its objects were
// nameless placeholders and a second failover silently dropped them.
func TestRecruitCarriesSpecsAcrossDoubleFailover(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 17)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	p0Port, p0EP := stack(t, net, "p0")
	b1Port, b1EP := stack(t, net, "b1")
	b2Port, _ := stack(t, net, "b2")
	ns := NewNameService()
	if err := ns.Set("plant", "p0:7000", 1); err != nil {
		t.Fatal(err)
	}

	primary0, err := core.NewPrimary(core.Config{
		Clock: clk, Port: p0Port, Peer: "b1:7000", Ell: ms(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	backup1, err := core.NewBackup(core.Config{
		Clock: clk, Port: b1Port, Peer: "p0:7000", Ell: ms(2),
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := []core.ObjectSpec{
		{
			Name: "pressure", Size: 32, UpdatePeriod: ms(20),
			Constraint: temporal.ExternalConstraint{DeltaP: ms(20), DeltaB: ms(200)},
		},
		{
			Name: "flow", Size: 32, UpdatePeriod: ms(25),
			Constraint: temporal.ExternalConstraint{DeltaP: ms(25), DeltaB: ms(200)},
		},
	}
	for _, s := range specs {
		if d := primary0.Register(s); !d.Accepted {
			t.Fatalf("register %q: %s", s.Name, d.Reason)
		}
	}
	primary0.ClientWrite("pressure", []byte("42psi"), nil)
	primary0.ClientWrite("flow", []byte("7lps"), nil)
	// The decoupled update tasks start one (admission-specialized) period
	// out; run long enough for both objects to replicate.
	clk.RunFor(300 * time.Millisecond)

	// First failover: p0 dies, b1 promotes.
	p0EP.SetDown(true)
	primary0.Stop()
	p1, err := Promote(backup1, PromoteOptions{
		Service:  "plant",
		SelfAddr: "b1:7000",
		Names:    ns,
	})
	if err != nil {
		t.Fatalf("first promotion: %v", err)
	}
	if p1.Epoch() != 2 {
		t.Fatalf("first promotion epoch = %d, want 2", p1.Epoch())
	}

	// Recruit b2 — a replica that never saw a Register message; the
	// chunked join exchange is its only source of specs and state.
	backup2, err := core.NewBackup(core.Config{
		Clock: clk, Port: b2Port, Peer: "b1:7000", Ell: ms(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Recruit(p1, "b2:7000"); err != nil {
		t.Fatal(err)
	}
	clk.RunFor(500 * time.Millisecond)
	if !backup2.Joined() {
		t.Fatal("recruited backup never completed its join exchange")
	}
	if got := len(backup2.Specs()); got != len(specs) {
		t.Fatalf("recruit holds %d specs, want %d", got, len(specs))
	}

	// Second failover: b1 dies, b2 promotes. Its snapshot must carry the
	// specs the repair protocol delivered.
	b1EP.SetDown(true)
	p1.Stop()
	p2, err := Promote(backup2, PromoteOptions{
		Service:  "plant",
		SelfAddr: "b2:7000",
		Names:    ns,
	})
	if err != nil {
		t.Fatalf("second promotion: %v", err)
	}
	if p2.Epoch() != 3 {
		t.Fatalf("second promotion epoch = %d, want 3", p2.Epoch())
	}
	for _, s := range specs {
		if _, ok := p2.Spec(s.Name); !ok {
			t.Fatalf("object %q lost across the double failover", s.Name)
		}
		if _, _, ok := p2.Value(s.Name); !ok {
			t.Fatalf("object %q re-admitted without its replicated value", s.Name)
		}
	}
}

// TestConcurrentPromotionsMintDistinctEpochs drives two promotions
// against one directory from the same observed epoch: the loser of the
// Set race must re-derive its epoch above the recorded one instead of
// failing (or worse, serving under a duplicate epoch).
func TestConcurrentPromotionsMintDistinctEpochs(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 5)
	b1Port, _ := stack(t, net, "b1")
	b2Port, _ := stack(t, net, "b2")
	ns := NewNameService()
	if err := ns.Set("plant", "dead:7000", 1); err != nil {
		t.Fatal(err)
	}

	backup1, err := core.NewBackup(core.Config{
		Clock: clk, Port: b1Port, Peer: "dead:7000", Ell: ms(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	backup2, err := core.NewBackup(core.Config{
		Clock: clk, Port: b2Port, Peer: "dead:7000", Ell: ms(2),
	})
	if err != nil {
		t.Fatal(err)
	}

	p1, err := Promote(backup1, PromoteOptions{
		Service:  "plant",
		SelfAddr: "b1:7000",
		Names:    ns,
	})
	if err != nil {
		t.Fatalf("first promotion: %v", err)
	}
	p2, err := Promote(backup2, PromoteOptions{
		Service:  "plant",
		SelfAddr: "b2:7000",
		Names:    ns,
	})
	if err != nil {
		t.Fatalf("second promotion must win a fresh epoch, got error: %v", err)
	}

	if p1.Epoch() == p2.Epoch() {
		t.Fatalf("both promotions minted epoch %d", p1.Epoch())
	}
	if p1.Epoch() != 2 || p2.Epoch() != 3 {
		t.Fatalf("epochs = %d, %d; want 2 and 3", p1.Epoch(), p2.Epoch())
	}
	addr, epoch, ok := ns.Lookup("plant")
	if !ok || addr != "b2:7000" || epoch != 3 {
		t.Fatalf("directory records %v@%d, want b2:7000@3", addr, epoch)
	}
}
