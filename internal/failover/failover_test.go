package failover

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
	"rtpb/internal/xkernel"
)

func stack(t *testing.T, net *netsim.Network, host string) (*xkernel.PortProtocol, *netsim.Endpoint) {
	t.Helper()
	ep, err := net.Endpoint(host)
	if err != nil {
		t.Fatal(err)
	}
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(ep)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := g.Protocol("uport")
	return p.(*xkernel.PortProtocol), ep
}

// TestFullFailoverScenario exercises the complete Section 4.4 story:
// normal replication, primary crash, detection at the backup, promotion
// with state recovery and name-service update, standby client activation,
// recruitment of a fresh backup, and resumed replication to it.
func TestFullFailoverScenario(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 42)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	pPort, pEP := stack(t, net, "primary")
	bPort, _ := stack(t, net, "backup")
	ns := NewNameService()
	if err := ns.Set("plant", "primary:7000", 1); err != nil {
		t.Fatal(err)
	}

	primary, err := core.NewPrimary(core.Config{
		Clock: clk, Port: pPort, Peer: "backup:7000", Ell: ms(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := core.NewBackup(core.Config{
		Clock: clk, Port: bPort, Peer: "primary:7000", Ell: ms(5),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Backup-side failure detector over the real heartbeat messages.
	var promoted *core.Primary
	clientActivated := false
	var det *Detector
	det, err = NewDetector(clk, cfg(), backup.SendPing, func() {
		var perr error
		promoted, perr = Promote(backup, PromoteOptions{
			Service:        "plant",
			SelfAddr:       "backup:7000",
			Names:          ns,
			ActivateClient: func(*core.Primary) { clientActivated = true },
		})
		if perr != nil {
			t.Fatalf("promotion failed: %v", perr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	backup.OnPingAck = det.OnAck
	det.Start()

	s := core.ObjectSpec{
		Name:         "pressure",
		Size:         16,
		UpdatePeriod: ms(40),
		Constraint:   temporal.ExternalConstraint{DeltaP: ms(50), DeltaB: ms(250)},
	}
	if d := primary.Register(s); !d.Accepted {
		t.Fatalf("registration rejected: %s", d.Reason)
	}

	// Phase 1: normal replication.
	writer := clock.NewPeriodic(clk, 0, ms(40), func() {
		primary.ClientWrite("pressure", []byte("42psi"), nil)
	})
	clk.RunFor(time.Second)
	if v, _, ok := backup.Value("pressure"); !ok || string(v) != "42psi" {
		t.Fatalf("backup not replicating before crash: %q ok=%v", v, ok)
	}
	if promoted != nil {
		t.Fatal("backup promoted while primary healthy")
	}

	// Phase 2: the primary crashes.
	writer.Stop()
	primary.Stop()
	pEP.SetDown(true)
	clk.RunFor(time.Second)

	if promoted == nil {
		t.Fatal("backup never detected the primary's death")
	}
	if !clientActivated {
		t.Fatal("standby client application was not activated")
	}
	addr, epoch, _ := ns.Lookup("plant")
	if addr != "backup:7000" || epoch != 2 {
		t.Fatalf("name service = %v epoch %d, want backup:7000 epoch 2", addr, epoch)
	}
	// Recovered state is served by the new primary.
	if v, _, ok := promoted.Value("pressure"); !ok || string(v) != "42psi" {
		t.Fatalf("promoted primary lost state: %q ok=%v", v, ok)
	}

	// Phase 3: the new primary serves writes while awaiting a recruit.
	promoted.ClientWrite("pressure", []byte("43psi"), nil)
	clk.RunFor(ms(50))
	if v, _, ok := promoted.Value("pressure"); !ok || string(v) != "43psi" {
		t.Fatalf("promoted primary not serving writes: %q", v)
	}

	// Phase 4: recruit a replacement backup on a fresh node.
	rPort, _ := stack(t, net, "recruit")
	recruit, err := core.NewBackup(core.Config{
		Clock: clk, Port: rPort, Peer: "backup:7000", Ell: ms(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Recruit(promoted, "recruit:7000"); err != nil {
		t.Fatal(err)
	}
	writer2 := clock.NewPeriodic(clk, 0, ms(40), func() {
		promoted.ClientWrite("pressure", []byte("44psi"), nil)
	})
	clk.RunFor(time.Second)
	writer2.Stop()

	if v, _, ok := recruit.Value("pressure"); !ok || string(v) != "44psi" {
		t.Fatalf("recruited backup not replicating: %q ok=%v", v, ok)
	}
	if recruit.Epoch() != 2 {
		t.Fatalf("recruit epoch = %d, want 2", recruit.Epoch())
	}
}

// TestPromoteFreshBackupWithoutData promotes a backup that never received
// any update: specs re-register, no values to seed.
func TestPromoteFreshBackupWithoutData(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 7)
	net.SetDefaultLink(netsim.LinkParams{Delay: ms(2)})
	pPort, _ := stack(t, net, "primary")
	bPort, _ := stack(t, net, "backup")

	primary, err := core.NewPrimary(core.Config{Clock: clk, Port: pPort, Peer: "backup:7000", Ell: ms(5)})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := core.NewBackup(core.Config{Clock: clk, Port: bPort, Peer: "primary:7000", Ell: ms(5)})
	if err != nil {
		t.Fatal(err)
	}
	s := core.ObjectSpec{
		Name: "x", Size: 8, UpdatePeriod: ms(40),
		Constraint: temporal.ExternalConstraint{DeltaP: ms(50), DeltaB: ms(250)},
	}
	if d := primary.Register(s); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	clk.RunFor(ms(100)) // registration reaches backup; no writes happen
	primary.Stop()

	p2, err := Promote(backup, PromoteOptions{
		Service:  "svc",
		SelfAddr: "backup:7000",
	})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Objects() != 1 {
		t.Fatalf("promoted primary has %d objects, want 1", p2.Objects())
	}
	if _, _, ok := p2.Value("x"); ok {
		t.Fatal("promoted primary invented data for never-written object")
	}
	if p2.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", p2.Epoch())
	}
}
