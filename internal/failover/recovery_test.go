package failover

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
)

// TestRecoveryTimeBoundedByDetectorConfig measures the paper's noted cost
// of passive replication — "schemes based on passive replication tend to
// require longer recovery time since a backup must execute an explicit
// recovery algorithm" — and checks that the service-unavailability window
// is what the failure-detector configuration predicts: detection takes at
// most MaxMisses·Timeout + Interval, and promotion itself is immediate in
// virtual time.
func TestRecoveryTimeBoundedByDetectorConfig(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 101)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	pPort, pEP := stack(t, net, "primary")
	bPort, _ := stack(t, net, "backup")

	primary, err := core.NewPrimary(core.Config{Clock: clk, Port: pPort, Peer: "backup:7000", Ell: ms(5)})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := core.NewBackup(core.Config{Clock: clk, Port: bPort, Peer: "primary:7000", Ell: ms(5)})
	if err != nil {
		t.Fatal(err)
	}
	s := core.ObjectSpec{
		Name: "x", Size: 8, UpdatePeriod: ms(20),
		Constraint: temporal.ExternalConstraint{DeltaP: ms(30), DeltaB: ms(200)},
	}
	if d := primary.Register(s); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}

	dcfg := DetectorConfig{Interval: ms(40), Timeout: ms(25), MaxMisses: 3}
	var promoted *core.Primary
	var promotedAt time.Time
	det, err := NewDetector(clk, dcfg, backup.SendPing, func() {
		p2, perr := Promote(backup, PromoteOptions{
			Service:  "svc",
			SelfAddr: "backup:7000",
		})
		if perr != nil {
			t.Fatalf("promote: %v", perr)
		}
		promoted = p2
		promotedAt = clk.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	backup.OnPingAck = det.OnAck
	det.Start()

	// Steady state: the client writes continuously through the primary.
	active := func() *core.Primary {
		if promoted != nil {
			return promoted
		}
		return primary
	}
	var lastOK, firstAfter time.Time
	writer := clock.NewPeriodic(clk, 0, ms(20), func() {
		p := active()
		if !p.Running() {
			return
		}
		before := promoted == nil
		p.ClientWrite("x", []byte("v"), func(_ time.Duration, err error) {
			if err != nil {
				return
			}
			if before {
				lastOK = clk.Now()
			} else if firstAfter.IsZero() {
				firstAfter = clk.Now()
			}
		})
	})
	clk.RunFor(time.Second)

	crashAt := clk.Now()
	primary.Stop()
	pEP.SetDown(true)
	clk.RunFor(2 * time.Second)
	writer.Stop()

	if promoted == nil {
		t.Fatal("no promotion")
	}
	detection := promotedAt.Sub(crashAt)
	// Worst case: a ping answered just before the crash, the next ping
	// fires up to Interval later, then MaxMisses chained timeouts.
	bound := dcfg.Interval + time.Duration(dcfg.MaxMisses)*dcfg.Timeout + ms(10)
	if detection <= 0 || detection > bound {
		t.Fatalf("detection took %v, want (0, %v]", detection, bound)
	}
	if firstAfter.IsZero() {
		t.Fatal("service never resumed after takeover")
	}
	outage := firstAfter.Sub(lastOK)
	// The unavailability window is detection plus at most one client
	// period and the write's own service time.
	if outage > bound+ms(25) {
		t.Fatalf("service outage %v exceeds detection bound %v", outage, bound)
	}
}
