package failover

import (
	"testing"
	"time"

	"rtpb/internal/clock"
)

// jitterSchedule is a scripted peer: it acks the most recent ping at
// fixed absolute instants, simulating a live but heavily jittery link.
// The warmup gaps (≤80ms) can never chain MaxMisses=3 timeouts (death
// needs 90ms of post-ping silence), so both detector flavours survive
// while the adaptive one accumulates ≥8 gap samples; the storm gaps
// (≥140ms) always cover a full timeout chain regardless of ping phase
// (next ping ≤50ms after an ack, plus 3×30ms timeouts), so a fixed
// threshold is guaranteed to false-fail there.
var jitterGaps = []time.Duration{
	// Warmup: jittery but survivable; 10 acks → suspicion history ready.
	ms(30), ms(75), ms(28), ms(80), ms(32), ms(78), ms(27), ms(80), ms(30), ms(76),
	// Storm: silences long enough to exhaust a fixed MaxMisses budget.
	ms(140), ms(30), ms(145), ms(25), ms(140),
}

// runJitterPeer wires a detector to the scripted schedule and returns
// the time at which onDead fired (-1 if never) plus the detector.
func runJitterPeer(t *testing.T, cfg DetectorConfig, runFor time.Duration) (time.Duration, *Detector) {
	t.Helper()
	clk := clock.NewSim()
	var d *Detector
	var latest uint64
	seq := uint64(0)
	send := func() uint64 {
		seq++
		latest = seq
		return seq
	}
	var deadAt time.Duration = -1
	d, err := NewDetector(clk, cfg, send, func() {
		deadAt = clk.Now().Sub(clock.SimEpoch)
	})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Duration(0)
	for _, gap := range jitterGaps {
		at += gap
		clk.Schedule(at, func() { d.OnAck(latest) })
	}
	d.Start()
	clk.RunFor(runFor)
	return deadAt, d
}

// TestFixedThresholdFalseFailoverUnderJitter demonstrates the failure
// mode the adaptive layer exists for: under heavy ack jitter from a peer
// that never crashes, the fixed MaxMisses threshold exhausts during a
// jitter spike and declares the peer dead — a promotion would fire
// against a live primary.
func TestFixedThresholdFalseFailoverUnderJitter(t *testing.T) {
	fixed := DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 3}
	deadAt, _ := runJitterPeer(t, fixed, 2*time.Second)
	if deadAt < 0 {
		t.Fatal("fixed-threshold detector survived the jitter storm; the false-failover scenario no longer reproduces")
	}
	// Death must land inside the storm phase (after warmup), i.e. a
	// false positive triggered by jitter, not by the survivable warmup.
	warmup := time.Duration(0)
	for _, g := range jitterGaps[:10] {
		warmup += g
	}
	if deadAt < warmup {
		t.Fatalf("fixed detector died at %v, during the survivable warmup (ends %v)", deadAt, warmup)
	}
}

// TestAdaptiveSuspicionSuppressesFalseFailover runs the identical
// schedule against an adaptive detector: the learned inter-ack gap
// distribution is wide enough that the storm silences score below the
// suspicion threshold, so the peer rides through the jitter alive.
func TestAdaptiveSuspicionSuppressesFalseFailover(t *testing.T) {
	adaptive := DetectorConfig{
		Interval: ms(50), Timeout: ms(30), MaxMisses: 3,
		Adaptive: true,
	}
	total := time.Duration(0)
	for _, g := range jitterGaps {
		total += g
	}
	deadAt, d := runJitterPeer(t, adaptive, total+ms(10))
	if deadAt >= 0 {
		t.Fatalf("adaptive detector false-failed at %v under jitter (suspicion %.2f)", deadAt, d.SuspicionLevel())
	}
	if !d.Alive() {
		t.Fatal("adaptive detector not alive after surviving the storm")
	}
	d.Stop()
}

// TestAdaptiveSuspicionStillDetectsRealCrash guards against the opposite
// failure: tolerance must not become blindness. After the same jittery
// history the peer goes permanently silent; the adaptive detector must
// declare death within the MaxSilence hard cap (default 8×Interval) plus
// one timeout of slack.
func TestAdaptiveSuspicionStillDetectsRealCrash(t *testing.T) {
	adaptive := DetectorConfig{
		Interval: ms(50), Timeout: ms(30), MaxMisses: 3,
		Adaptive: true,
	}
	lastAck := time.Duration(0)
	for _, g := range jitterGaps {
		lastAck += g
	}
	// Run far past the crash; the schedule simply stops acking.
	deadAt, _ := runJitterPeer(t, adaptive, lastAck+2*time.Second)
	if deadAt < 0 {
		t.Fatal("adaptive detector never declared the crashed peer dead")
	}
	maxSilence := 8 * ms(50)
	if limit := lastAck + maxSilence + ms(30); deadAt > limit {
		t.Fatalf("crash detected at %v, want ≤ %v (last ack %v + MaxSilence %v + one timeout)",
			deadAt, limit, lastAck, maxSilence)
	}
	if deadAt < lastAck+ms(90) {
		t.Fatalf("crash declared at %v, before even a fixed threshold could fire (last ack %v)", deadAt, lastAck)
	}
}
