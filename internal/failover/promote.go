package failover

import (
	"errors"
	"fmt"
	"log"

	"rtpb/internal/core"
	"rtpb/internal/xkernel"
)

// PromoteOptions parameterizes a backup-to-primary promotion.
type PromoteOptions struct {
	// Service is the replicated service's name in the name service.
	Service string
	// SelfAddr is the promoted replica's address ("host:port") recorded
	// in the name service.
	SelfAddr xkernel.Addr
	// Names is the name service to update; optional. Use NameService in
	// simulations or FileNameService for a persistent name file.
	Names Directory
	// OnPlaceholderDrop, when set, observes the ids of spec-less
	// placeholder objects the promotion had to discard (orphan updates
	// whose registration never arrived — replicated bytes with no
	// identity cannot be served). When nil, the drop is logged via the
	// standard logger so data lost at takeover is never silent.
	OnPlaceholderDrop func(ids []uint32)
	// ActivateClient, when set, is invoked once the new primary is
	// serving — the paper's "invokes a backup version of the client
	// application at the local machine" with the recovered state fed by
	// up-call.
	ActivateClient func(p *core.Primary)
}

// Promote executes the Section 4.4 takeover on a backup that has declared
// the primary dead: the replica flips to the primary role in place under
// a bumped epoch. The object table and admission ledger carry over — no
// snapshot copy, no re-admission loop (every spec was admitted when it
// was replicated) — so takeover cost does not grow with the object count.
// The directory entry is then claimed and the standby client application
// activated. The promoted primary starts with no peers; callers re-attach
// surviving backups with AddPeer (or Recruit).
func Promote(b *core.Backup, opts PromoteOptions) (*core.Primary, error) {
	epoch := nextEpoch(b.Epoch(), opts)

	drop := opts.OnPlaceholderDrop
	if drop == nil {
		service := opts.Service
		drop = func(ids []uint32) {
			log.Printf("failover: promotion of %q dropped %d spec-less placeholder object(s) %v: replicated data without a registration cannot be served",
				service, len(ids), ids)
		}
	}
	prev := b.OnPlaceholderDrop
	b.OnPlaceholderDrop = drop
	err := b.Promote(epoch)
	b.OnPlaceholderDrop = prev
	if err != nil {
		return nil, fmt.Errorf("failover: promote: %w", err)
	}
	p := b // same replica, new role

	if opts.Names != nil {
		// Claim the directory entry. A concurrent promotion may have
		// recorded a newer epoch since we derived ours; re-derive above
		// the recorded epoch and try again, so two racing promotions can
		// never mint the same epoch.
		for attempt := 0; ; attempt++ {
			err := opts.Names.Set(opts.Service, opts.SelfAddr, epoch)
			if err == nil {
				break
			}
			if errors.Is(err, ErrStaleEpoch) && attempt < epochClaimRetries {
				if _, rec, ok := opts.Names.Lookup(opts.Service); ok && rec >= epoch {
					epoch = rec + 1
					p.SetEpoch(epoch)
					continue
				}
			}
			p.Stop()
			return nil, fmt.Errorf("failover: name service: %w", err)
		}
	}
	if opts.ActivateClient != nil {
		opts.ActivateClient(p)
	}
	return p, nil
}

// epochClaimRetries bounds how many times a promotion re-derives its
// epoch after losing a directory race.
const epochClaimRetries = 8

// nextEpoch derives the epoch a promotion will claim: one past the
// highest epoch this replica has observed — from replicated traffic or,
// when a directory is available, from its recorded entry (the
// authoritative record a freshly restarted replica may be behind on).
// The floor of 2 encodes that the failed primary held at least epoch 1.
func nextEpoch(observed uint32, opts PromoteOptions) uint32 {
	epoch := observed + 1
	if opts.Names != nil {
		if _, rec, ok := opts.Names.Lookup(opts.Service); ok && rec >= epoch {
			epoch = rec + 1
		}
	}
	if epoch < 2 {
		epoch = 2
	}
	return epoch
}

// Recruit points a serving primary at a fresh backup replica: the peer
// session is re-opened, all object registrations are replayed, liveness
// is re-armed, and a full state transfer pushes current values.
func Recruit(p *core.Primary, backupAddr xkernel.Addr) error {
	if err := p.SetPeer(backupAddr); err != nil {
		return fmt.Errorf("failover: recruit %s: %w", backupAddr, err)
	}
	p.SetBackupAlive(true)
	return nil
}
