package failover

import (
	"errors"
	"fmt"

	"rtpb/internal/core"
	"rtpb/internal/xkernel"
)

// PromoteOptions parameterizes a backup-to-primary promotion.
type PromoteOptions struct {
	// Service is the replicated service's name in the name service.
	Service string
	// SelfAddr is the promoted replica's address ("host:port") recorded
	// in the name service.
	SelfAddr xkernel.Addr
	// Names is the name service to update; optional. Use NameService in
	// simulations or FileNameService for a persistent name file.
	Names Directory
	// PrimaryConfig configures the new primary. Its Port must be the
	// promoted replica's own port protocol; Peer should be empty (no
	// backup yet) or name a recruit.
	PrimaryConfig core.Config
	// ActivateClient, when set, is invoked once the new primary is
	// serving — the paper's "invokes a backup version of the client
	// application at the local machine" with the recovered state fed by
	// up-call.
	ActivateClient func(p *core.Primary)
}

// Promote executes the Section 4.4 takeover on a backup that has declared
// the primary dead: it stops the backup role, starts a primary on the
// same protocol stack, re-registers every object spec the backup had
// reserved (they were admitted once, so they re-admit), seeds the new
// primary's table with the most recent replicated values, bumps the
// epoch, updates the name service, and finally activates the standby
// client application.
func Promote(b *core.Backup, opts PromoteOptions) (*core.Primary, error) {
	snap := b.Snapshot()
	epoch := nextEpoch(b.Epoch(), opts)
	b.Stop()

	p, err := core.NewPrimary(opts.PrimaryConfig)
	if err != nil {
		return nil, fmt.Errorf("failover: start new primary: %w", err)
	}
	p.SetEpoch(epoch)
	// Until a new backup is recruited there is nobody to replicate to.
	p.SetBackupAlive(false)

	for _, e := range snap {
		if e.Spec.Name == "" {
			continue // placeholder created by an orphan update; unusable
		}
		if d := p.Register(e.Spec); !d.Accepted {
			p.Stop()
			return nil, fmt.Errorf("failover: re-admission of %q failed: %s", e.Spec.Name, d.Reason)
		}
		if e.HasData {
			if err := p.SeedObject(e.Spec.Name, e.Value, e.Version); err != nil {
				p.Stop()
				return nil, fmt.Errorf("failover: seed %q: %w", e.Spec.Name, err)
			}
		}
	}

	if opts.Names != nil {
		// Claim the directory entry. A concurrent promotion may have
		// recorded a newer epoch since we derived ours; re-derive above
		// the recorded epoch and try again, so two racing promotions can
		// never mint the same epoch.
		for attempt := 0; ; attempt++ {
			err := opts.Names.Set(opts.Service, opts.SelfAddr, epoch)
			if err == nil {
				break
			}
			if errors.Is(err, ErrStaleEpoch) && attempt < epochClaimRetries {
				if _, rec, ok := opts.Names.Lookup(opts.Service); ok && rec >= epoch {
					epoch = rec + 1
					p.SetEpoch(epoch)
					continue
				}
			}
			p.Stop()
			return nil, fmt.Errorf("failover: name service: %w", err)
		}
	}
	if opts.ActivateClient != nil {
		opts.ActivateClient(p)
	}
	return p, nil
}

// epochClaimRetries bounds how many times a promotion re-derives its
// epoch after losing a directory race.
const epochClaimRetries = 8

// nextEpoch derives the epoch a promotion will claim: one past the
// highest epoch this replica has observed — from replicated traffic or,
// when a directory is available, from its recorded entry (the
// authoritative record a freshly restarted replica may be behind on).
// The floor of 2 encodes that the failed primary held at least epoch 1.
func nextEpoch(observed uint32, opts PromoteOptions) uint32 {
	epoch := observed + 1
	if opts.Names != nil {
		if _, rec, ok := opts.Names.Lookup(opts.Service); ok && rec >= epoch {
			epoch = rec + 1
		}
	}
	if epoch < 2 {
		epoch = 2
	}
	return epoch
}

// Recruit points a serving primary at a fresh backup replica: the peer
// session is re-opened, all object registrations are replayed, liveness
// is re-armed, and a full state transfer pushes current values.
func Recruit(p *core.Primary, backupAddr xkernel.Addr) error {
	if err := p.SetPeer(backupAddr); err != nil {
		return fmt.Errorf("failover: recruit %s: %w", backupAddr, err)
	}
	p.SetBackupAlive(true)
	return nil
}
