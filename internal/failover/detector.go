// Package failover implements the failure detection and recovery
// machinery of Section 4.4: a ping/ack heartbeat detector with timeout and
// retry, a name service recording which replica currently serves as
// primary, and the promotion procedure that turns a backup into the new
// primary (update the name service, activate the standby client
// application, seed the new primary's table from replicated state, and
// wait to recruit a new backup).
package failover

import (
	"errors"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/resilience"
)

// DetectorConfig tunes the heartbeat failure detector.
type DetectorConfig struct {
	// Interval is the ping period.
	Interval time.Duration
	// Timeout is how long to wait for a ping's ack before counting a
	// miss and resending.
	Timeout time.Duration
	// MaxMisses is the number of consecutive unanswered pings after
	// which the peer is declared dead.
	MaxMisses int
	// Adaptive layers a phi-accrual-style suspicion score over the fixed
	// MaxMisses threshold: once MaxMisses consecutive pings go
	// unanswered, the peer is declared dead only if the current silence
	// is also SuspicionThreshold standard deviations beyond the
	// historical inter-ack gap distribution (or the history is too thin
	// to judge). A naturally jittery link earns a wide distribution and
	// rides out silences that would false-fail a fixed threshold; a
	// historically crisp link converts the same silence into high
	// suspicion just as fast as before.
	Adaptive bool
	// SuspicionThreshold is the normalized-deviation score past which an
	// adaptive detector declares death; defaults to 4.
	SuspicionThreshold float64
	// MaxSilence hard-caps how long an adaptive detector will defer to
	// its learned distribution: any silence at least this long is fatal
	// regardless of suspicion score. Defaults to 8×Interval.
	MaxSilence time.Duration
	// WallClockElapsed restores the seed's behaviour of measuring
	// detector silences by differencing wall-clock Now() readings. The
	// hardened default measures them on the clock's monotonic timebase
	// (clock.MonotonicClock), which a wall-clock step cannot inflate —
	// under the legacy behaviour a forward step makes the silence since
	// the last ack look MaxSilence long and manufactures a false
	// failover from a healthy peer (the chaos scenario
	// clock-step-false-failover pins both outcomes). This knob exists as
	// that ablation; never enable it in a deployment.
	WallClockElapsed bool
}

// DefaultDetectorConfig returns the configuration used by the examples
// and the evaluation harness.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		Interval:  50 * time.Millisecond,
		Timeout:   30 * time.Millisecond,
		MaxMisses: 3,
	}
}

// Validate checks the configuration.
func (c DetectorConfig) Validate() error {
	switch {
	case c.Interval <= 0:
		return errors.New("failover: non-positive ping interval")
	case c.Timeout <= 0:
		return errors.New("failover: non-positive ack timeout")
	case c.MaxMisses <= 0:
		return errors.New("failover: MaxMisses must be at least 1")
	case c.Adaptive && c.SuspicionThreshold < 0:
		return errors.New("failover: negative SuspicionThreshold")
	case c.Adaptive && c.MaxSilence < 0:
		return errors.New("failover: negative MaxSilence")
	}
	return nil
}

// normalized fills the adaptive defaults.
func (c DetectorConfig) normalized() DetectorConfig {
	if c.Adaptive {
		if c.SuspicionThreshold == 0 {
			c.SuspicionThreshold = 4
		}
		if c.MaxSilence == 0 {
			c.MaxSilence = 8 * c.Interval
		}
	}
	return c
}

// Detector drives the heartbeat exchange for one replica: it periodically
// invokes send (which transmits a Ping and returns its sequence number),
// expects OnAck for that sequence within Timeout, resends on timeout, and
// declares the peer dead after MaxMisses consecutive unanswered pings.
type Detector struct {
	clk    clock.Clock
	cfg    DetectorConfig
	send   func() uint64
	onDead func()

	task       *clock.Periodic
	timeout    *clock.Event
	awaiting   uint64
	hasPending bool
	misses     int
	alive      bool
	running    bool
	suppressed bool

	// Adaptive suspicion state: the inter-ack gap distribution and the
	// instant of the most recent proof of life.
	susp    *resilience.Suspicion
	lastAck time.Time
	hasAck  bool
}

// NewDetector builds a stopped detector; call Start to begin pinging.
// send must transmit a heartbeat and return its sequence number; onDead
// fires once when the peer is declared dead.
func NewDetector(clk clock.Clock, cfg DetectorConfig, send func() uint64, onDead func()) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Detector{clk: clk, cfg: cfg.normalized(), send: send, onDead: onDead, alive: true}
	if d.cfg.Adaptive {
		d.susp = resilience.NewSuspicion()
	}
	return d, nil
}

// Start begins the periodic heartbeat. It is a no-op if already running.
func (d *Detector) Start() {
	if d.running {
		return
	}
	d.running = true
	d.alive = true
	d.misses = 0
	d.task = clock.NewPeriodic(d.clk, 0, d.cfg.Interval, d.ping)
}

// Stop cancels heartbeats and timeouts.
func (d *Detector) Stop() {
	if !d.running {
		return
	}
	d.running = false
	d.task.Stop()
	if d.timeout != nil {
		d.timeout.Cancel()
		d.timeout = nil
	}
	d.hasPending = false
}

// Alive reports the detector's current view of the peer.
func (d *Detector) Alive() bool { return d.alive }

// Running reports whether the detector is active.
func (d *Detector) Running() bool { return d.running }

// Misses reports the current count of consecutive unanswered pings.
func (d *Detector) Misses() int { return d.misses }

// Reset clears failure state so the detector can monitor a newly
// recruited peer.
func (d *Detector) Reset() {
	d.alive = true
	d.misses = 0
	d.hasPending = false
	if d.timeout != nil {
		d.timeout.Cancel()
		d.timeout = nil
	}
	if d.susp != nil {
		d.susp.Reset()
		d.hasAck = false
	}
}

// Suppress pauses (true) or resumes (false) the heartbeat exchange
// without tearing the detector down: while suppressed, no pings are sent,
// any in-flight timeout is cancelled, and the miss count is frozen, so a
// crash during suppression is only detected after resumption. Fault
// harnesses use it to model a wedged monitoring task.
func (d *Detector) Suppress(suppress bool) {
	if d.suppressed == suppress {
		return
	}
	d.suppressed = suppress
	if suppress {
		d.hasPending = false
		if d.timeout != nil {
			d.timeout.Cancel()
			d.timeout = nil
		}
	}
}

// Suppressed reports whether the heartbeat exchange is paused.
func (d *Detector) Suppressed() bool { return d.suppressed }

func (d *Detector) ping() {
	if !d.running || !d.alive || d.suppressed {
		return
	}
	if d.hasPending {
		// The previous ping is still outstanding; its timeout handles
		// retries. Skip to avoid flooding a slow peer.
		return
	}
	d.sendPing()
}

func (d *Detector) sendPing() {
	d.awaiting = d.send()
	d.hasPending = true
	d.timeout = d.clk.Schedule(d.cfg.Timeout, d.onTimeout)
}

func (d *Detector) onTimeout() {
	if !d.running || !d.alive || !d.hasPending || d.suppressed {
		return
	}
	d.misses++
	if d.misses >= d.cfg.MaxMisses && !d.silenceTolerable() {
		d.alive = false
		d.hasPending = false
		d.Stop()
		if d.onDead != nil {
			d.onDead()
		}
		return
	}
	// Timeout and resend, per the paper: "if a server receives no
	// acknowledgment over some time, it will timeout and resend".
	d.sendPing()
}

// monoEpoch anchors monotonic readings as time.Time instants so they can
// feed APIs (Suspicion) that difference instants. Only differences of
// instants from the same timebase are ever taken, so the anchor value is
// arbitrary.
var monoEpoch = time.Unix(0, 0)

// instant reports the detector's elapsed-time reading as an instant. All
// of the detector's duration arithmetic (silence since last ack, the
// suspicion scorer's inter-ack gaps) differences these instants, so they
// are taken from the clock's monotonic timebase when it offers one: a
// wall-clock step then cannot stretch or shrink any measured silence.
// Miss counting needs no such care — it advances only when a real ack
// timeout fires, and timers are step-immune by construction. The
// WallClockElapsed ablation (or a clock with no monotonic reading) falls
// back to differencing Now().
func (d *Detector) instant() time.Time {
	if !d.cfg.WallClockElapsed {
		if m, ok := clock.Monotonic(d.clk); ok {
			return monoEpoch.Add(m)
		}
	}
	return d.clk.Now()
}

// silenceTolerable reports whether an adaptive detector should ride out
// the current silence despite MaxMisses consecutive unanswered pings: the
// learned gap distribution must be mature, must score the silence below
// the suspicion threshold, and the MaxSilence hard cap must not have been
// reached. A fixed-threshold detector never tolerates.
func (d *Detector) silenceTolerable() bool {
	if !d.cfg.Adaptive || d.susp == nil || !d.susp.Ready() || !d.hasAck {
		return false
	}
	now := d.instant()
	if now.Sub(d.lastAck) >= d.cfg.MaxSilence {
		return false
	}
	return d.susp.Level(now) < d.cfg.SuspicionThreshold
}

// SuspicionLevel reports the adaptive suspicion score of the current
// silence (zero for fixed-threshold detectors or thin history).
func (d *Detector) SuspicionLevel() float64 {
	if d.susp == nil || !d.susp.Ready() {
		return 0
	}
	return d.susp.Level(d.instant())
}

// OnAck feeds a received ping acknowledgement into the detector. Acks for
// stale sequence numbers still count as proof of life.
func (d *Detector) OnAck(seq uint64) {
	if !d.running {
		return
	}
	if d.hasPending && seq == d.awaiting {
		d.hasPending = false
		if d.timeout != nil {
			d.timeout.Cancel()
			d.timeout = nil
		}
	}
	d.misses = 0
	d.alive = true
	if d.susp != nil {
		now := d.instant()
		d.susp.Observe(now)
		d.lastAck = now
		d.hasAck = true
	}
}
