package failover

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
)

// TestChainedFailoverPromotesInPlace drives two takeovers back to back —
// crash p0, promote b1, crash b1, promote b2 — and pins the properties of
// the in-place role flip: each promotion returns the very replica it was
// handed (no copy), epochs strictly increase across the chain, every
// object keeps its admitted home (spec, schedulability, and replicated
// value all survive), and the new primary serves client writes
// immediately after each takeover.
func TestChainedFailoverPromotesInPlace(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 23)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	p0Port, p0EP := stack(t, net, "p0")
	b1Port, b1EP := stack(t, net, "b1")
	b2Port, _ := stack(t, net, "b2")
	ns := NewNameService()
	if err := ns.Set("plant", "p0:7000", 1); err != nil {
		t.Fatal(err)
	}

	primary0, err := core.NewPrimary(core.Config{
		Clock: clk, Port: p0Port, Peer: "b1:7000", Ell: ms(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	backup1, err := core.NewBackup(core.Config{
		Clock: clk, Port: b1Port, Peer: "p0:7000", Ell: ms(2),
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := []core.ObjectSpec{
		{
			Name: "pressure", Size: 32, UpdatePeriod: ms(20),
			Constraint: temporal.ExternalConstraint{DeltaP: ms(20), DeltaB: ms(200)},
		},
		{
			Name: "flow", Size: 32, UpdatePeriod: ms(25),
			Constraint: temporal.ExternalConstraint{DeltaP: ms(25), DeltaB: ms(200)},
		},
	}
	for _, s := range specs {
		if d := primary0.Register(s); !d.Accepted {
			t.Fatalf("register %q: %s", s.Name, d.Reason)
		}
	}
	primary0.ClientWrite("pressure", []byte("p@1"), nil)
	primary0.ClientWrite("flow", []byte("f@1"), nil)
	clk.RunFor(300 * time.Millisecond)

	// First takeover: p0 dies, b1 flips to primary in place.
	p0EP.SetDown(true)
	primary0.Stop()
	p1, err := Promote(backup1, PromoteOptions{
		Service: "plant", SelfAddr: "b1:7000", Names: ns,
	})
	if err != nil {
		t.Fatalf("first promotion: %v", err)
	}
	if p1 != backup1 {
		t.Fatal("promotion built a new replica instead of flipping the backup in place")
	}
	if p1.Role() != core.RolePrimary || p1.Transitions() != 1 {
		t.Fatalf("after first takeover: role=%v transitions=%d, want primary/1",
			p1.Role(), p1.Transitions())
	}
	if p1.Epoch() != 2 {
		t.Fatalf("first takeover epoch = %d, want 2", p1.Epoch())
	}
	p1.ClientWrite("pressure", []byte("p@2"), nil)
	clk.RunFor(50 * time.Millisecond)
	if v, _, ok := p1.Value("pressure"); !ok || string(v) != "p@2" {
		t.Fatalf("first successor not serving writes: %q ok=%v", v, ok)
	}

	// Recruit b2 under the new primary; the join exchange is its only
	// source of specs and state.
	backup2, err := core.NewBackup(core.Config{
		Clock: clk, Port: b2Port, Peer: "b1:7000", Ell: ms(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Recruit(p1, "b2:7000"); err != nil {
		t.Fatal(err)
	}
	clk.RunFor(500 * time.Millisecond)
	if !backup2.Joined() {
		t.Fatal("recruited backup never completed its join exchange")
	}

	// Second takeover: b1 dies, b2 flips in place.
	b1EP.SetDown(true)
	p1.Stop()
	p2, err := Promote(backup2, PromoteOptions{
		Service: "plant", SelfAddr: "b2:7000", Names: ns,
	})
	if err != nil {
		t.Fatalf("second promotion: %v", err)
	}
	if p2 != backup2 {
		t.Fatal("second promotion built a new replica instead of flipping in place")
	}
	if p2.Role() != core.RolePrimary || p2.Transitions() != 1 {
		t.Fatalf("after second takeover: role=%v transitions=%d, want primary/1",
			p2.Role(), p2.Transitions())
	}
	if p2.Epoch() <= p1.Epoch() {
		t.Fatalf("epochs must strictly increase across the chain: %d then %d",
			p1.Epoch(), p2.Epoch())
	}
	addr, epoch, _ := ns.Lookup("plant")
	if addr != "b2:7000" || epoch != p2.Epoch() {
		t.Fatalf("directory records %v@%d, want b2:7000@%d", addr, epoch, p2.Epoch())
	}

	// No object lost its admitted home across two takeovers.
	if !p2.Feasible() {
		t.Fatal("surviving object set no longer schedulable")
	}
	for _, s := range specs {
		if _, ok := p2.Spec(s.Name); !ok {
			t.Fatalf("object %q lost its registration across the chain", s.Name)
		}
		if _, _, ok := p2.Value(s.Name); !ok {
			t.Fatalf("object %q lost its replicated value across the chain", s.Name)
		}
	}
	p2.ClientWrite("flow", []byte("f@3"), nil)
	clk.RunFor(50 * time.Millisecond)
	if v, _, ok := p2.Value("flow"); !ok || string(v) != "f@3" {
		t.Fatalf("second successor not serving writes: %q ok=%v", v, ok)
	}
}
