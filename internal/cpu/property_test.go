package cpu

import (
	"flag"
	"math/rand"
	"testing"
	"time"

	"rtpb/internal/clock"
)

// seedFlag shifts every property test's fixed RNG seed so alternative
// schedules can be explored on demand (go test ./internal/cpu -seed=N);
// the default 0 keeps runs byte-identical to the committed seeds.
var seedFlag = flag.Int64("seed", 0, "offset added to the property tests' fixed RNG seeds")

func propRand(base int64) *rand.Rand { return rand.New(rand.NewSource(base + *seedFlag)) }

// TestWorkConservation checks the resource is work-conserving: for any
// submission pattern, total busy time equals the sum of costs, and the
// makespan equals the last arrival's backlog (no idling while work is
// queued, no time invented).
func TestWorkConservation(t *testing.T) {
	rng := propRand(5)
	for trial := 0; trial < 50; trial++ {
		clk := clock.NewSim()
		r := New(clk)
		var total time.Duration
		var lastDone time.Time
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			// Random arrival spacing and cost, random priority.
			clk.RunFor(time.Duration(rng.Intn(5)) * time.Millisecond)
			cost := time.Duration(rng.Intn(8)+1) * time.Millisecond
			total += cost
			prio := High
			if rng.Intn(2) == 0 {
				prio = Low
			}
			r.Submit(prio, cost, func() { lastDone = clk.Now() })
		}
		clk.RunFor(time.Second)
		if r.BusyTime() != total {
			t.Fatalf("trial %d: BusyTime %v != Σcosts %v", trial, r.BusyTime(), total)
		}
		if r.QueueLen() != 0 || r.Busy() {
			t.Fatalf("trial %d: resource not drained", trial)
		}
		if lastDone.IsZero() {
			t.Fatalf("trial %d: no completions", trial)
		}
		// The makespan is bounded below by the total service demand: the
		// CPU cannot finish all work earlier than Σcosts after the first
		// arrival (which is at or after the epoch).
		if lastDone.Sub(clock.SimEpoch) < total {
			t.Fatalf("trial %d: last completion %v before Σcosts %v elapsed",
				trial, lastDone.Sub(clock.SimEpoch), total)
		}
	}
}

// TestHighClassNeverWaitsBehindQueuedLow: whenever a High item is
// submitted, every Low item that has not yet started runs after it.
func TestHighClassNeverWaitsBehindQueuedLow(t *testing.T) {
	rng := propRand(9)
	for trial := 0; trial < 50; trial++ {
		clk := clock.NewSim()
		r := New(clk)
		type done struct {
			prio    Priority
			submit  int
			finish  time.Time
			started bool
		}
		var log []*done
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			prio := High
			if rng.Intn(3) > 0 {
				prio = Low
			}
			d := &done{prio: prio, submit: i}
			log = append(log, d)
			cost := time.Duration(rng.Intn(4)+1) * time.Millisecond
			r.Submit(prio, cost, func() { d.finish = clk.Now() })
		}
		clk.RunFor(time.Second)
		// Within each class, completion order follows submission order.
		var lastHigh, lastLow time.Time
		for _, d := range log {
			switch d.prio {
			case High:
				if d.finish.Before(lastHigh) {
					t.Fatalf("trial %d: High completions out of FIFO order", trial)
				}
				lastHigh = d.finish
			case Low:
				if d.finish.Before(lastLow) {
					t.Fatalf("trial %d: Low completions out of FIFO order", trial)
				}
				lastLow = d.finish
			}
		}
		// Every High submitted in the same batch finishes before any Low
		// except the one already occupying the CPU (index 0 if Low).
		var worstHigh time.Time
		for _, d := range log {
			if d.prio == High && d.finish.After(worstHigh) {
				worstHigh = d.finish
			}
		}
		for i, d := range log {
			if d.prio == Low && i > 0 && d.finish.Before(worstHigh) {
				t.Fatalf("trial %d: queued Low %d finished before a High", trial, i)
			}
		}
	}
}
