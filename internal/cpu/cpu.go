// Package cpu models the replica server's processor as a single serially
// scheduled resource with two priority classes. The paper's evaluation
// depends on processor contention at the primary: client requests and
// backup-update transmissions share one CPU, so admitting too many objects
// (Figure 7) saturates it and client response time explodes, while
// admission control (Figure 6) keeps utilization bounded. Compressed
// scheduling (Figure 12) is "schedule as many updates to backup as the
// resources allow": an update pump that chains one transmission after
// another through the low-priority class of this resource.
package cpu

import (
	"time"

	"rtpb/internal/clock"
)

// Priority is the scheduling class of submitted work.
type Priority int

const (
	// High is used for client-facing work (request handling).
	High Priority = iota + 1
	// Low is used for background work (update transmissions).
	Low
)

// Resource is a non-preemptive two-level priority FIFO processor.
type Resource struct {
	clk  clock.Clock
	high []work
	low  []work

	running  bool
	busy     time.Duration
	started  time.Time
	lastIdle time.Time
}

type work struct {
	cost time.Duration
	fn   func()
}

// New returns an idle resource driven by clk.
func New(clk clock.Clock) *Resource {
	return &Resource{clk: clk, lastIdle: clk.Now()}
}

// Submit enqueues work that occupies the processor for cost and then runs
// fn. fn runs on the clock executor at the work's completion instant.
// Zero-cost work still round-trips through the queue, preserving ordering.
func (r *Resource) Submit(p Priority, cost time.Duration, fn func()) {
	if cost < 0 {
		cost = 0
	}
	w := work{cost: cost, fn: fn}
	if p == High {
		r.high = append(r.high, w)
	} else {
		r.low = append(r.low, w)
	}
	if !r.running {
		r.dispatch()
	}
}

func (r *Resource) dispatch() {
	var w work
	switch {
	case len(r.high) > 0:
		w, r.high = r.high[0], r.high[1:]
	case len(r.low) > 0:
		w, r.low = r.low[0], r.low[1:]
	default:
		r.running = false
		r.lastIdle = r.clk.Now()
		return
	}
	r.running = true
	r.busy += w.cost
	r.clk.Schedule(w.cost, func() {
		if w.fn != nil {
			w.fn()
		}
		r.dispatch()
	})
}

// QueueLen reports the number of queued (not yet started) work items.
func (r *Resource) QueueLen() int { return len(r.high) + len(r.low) }

// Busy reports whether the processor is executing work right now.
func (r *Resource) Busy() bool { return r.running }

// BusyTime reports the cumulative processor time consumed by completed
// and in-progress work.
func (r *Resource) BusyTime() time.Duration { return r.busy }
