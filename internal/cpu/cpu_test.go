package cpu

import (
	"testing"
	"time"

	"rtpb/internal/clock"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSerialExecutionFIFO(t *testing.T) {
	clk := clock.NewSim()
	r := New(clk)
	var done []int
	var times []time.Duration
	for i := 0; i < 3; i++ {
		i := i
		r.Submit(High, ms(10), func() {
			done = append(done, i)
			times = append(times, clk.Now().Sub(clock.SimEpoch))
		})
	}
	clk.RunFor(ms(100))
	if len(done) != 3 || done[0] != 0 || done[1] != 1 || done[2] != 2 {
		t.Fatalf("completion order = %v", done)
	}
	want := []time.Duration{ms(10), ms(20), ms(30)}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("completions at %v, want %v", times, want)
		}
	}
}

func TestHighPriorityOvertakesQueuedLow(t *testing.T) {
	clk := clock.NewSim()
	r := New(clk)
	var order []string
	r.Submit(Low, ms(10), func() { order = append(order, "low1") })
	r.Submit(Low, ms(10), func() { order = append(order, "low2") })
	r.Submit(High, ms(1), func() { order = append(order, "high") })
	clk.RunFor(ms(100))
	// low1 already occupies the CPU (non-preemptive), but high overtakes
	// the queued low2.
	want := []string{"low1", "high", "low2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestQueueingDelayAccumulates(t *testing.T) {
	clk := clock.NewSim()
	r := New(clk)
	var last time.Duration
	for i := 0; i < 10; i++ {
		r.Submit(High, ms(5), func() { last = clk.Now().Sub(clock.SimEpoch) })
	}
	clk.RunFor(ms(100))
	if last != ms(50) {
		t.Fatalf("last completion at %v, want 50ms", last)
	}
	if r.BusyTime() != ms(50) {
		t.Fatalf("BusyTime = %v, want 50ms", r.BusyTime())
	}
}

func TestIdleThenResume(t *testing.T) {
	clk := clock.NewSim()
	r := New(clk)
	ran := 0
	r.Submit(High, ms(5), func() { ran++ })
	clk.RunFor(ms(20))
	if r.Busy() {
		t.Fatal("resource busy after drain")
	}
	r.Submit(Low, ms(5), func() { ran++ })
	clk.RunFor(ms(20))
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

func TestZeroAndNegativeCost(t *testing.T) {
	clk := clock.NewSim()
	r := New(clk)
	ran := 0
	r.Submit(High, 0, func() { ran++ })
	r.Submit(High, -ms(5), func() { ran++ })
	clk.RunFor(ms(1))
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if r.BusyTime() != 0 {
		t.Fatalf("BusyTime = %v, want 0", r.BusyTime())
	}
}

func TestChainedWorkKeepsCPUBusy(t *testing.T) {
	// The compressed-scheduling pump pattern: each completion submits the
	// next work item. The CPU must stay continuously busy.
	clk := clock.NewSim()
	r := New(clk)
	count := 0
	var pump func()
	pump = func() {
		count++
		if count < 100 {
			r.Submit(Low, ms(1), pump)
		}
	}
	r.Submit(Low, ms(1), pump)
	clk.RunFor(ms(100))
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if r.BusyTime() != ms(100) {
		t.Fatalf("BusyTime = %v, want 100ms", r.BusyTime())
	}
}

func TestQueueLen(t *testing.T) {
	clk := clock.NewSim()
	r := New(clk)
	r.Submit(High, ms(10), nil)
	r.Submit(High, ms(10), nil)
	r.Submit(Low, ms(10), nil)
	if r.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2 (one running)", r.QueueLen())
	}
	clk.RunFor(ms(100))
	if r.QueueLen() != 0 {
		t.Fatalf("QueueLen after drain = %d", r.QueueLen())
	}
}
