package gateway

// Mode is the gateway's admission-aware backpressure rung, derived from
// the backend's governor state rather than from any gateway-local queue
// depth — the replica tier's own overload signal is the authority.
//
// The ladder is asymmetric by design: Shed refuses *new* sessions,
// SlowPath drops *broadcast frames* for the struggling shards, and
// neither rung ever drops a client write — write-side backpressure
// belongs to the replica's admission control and governor.
type Mode uint8

const (
	// Normal: sessions admitted, every shard broadcast.
	Normal Mode = iota
	// SlowPath: at least one shard's governor is degraded; that shard's
	// broadcast frames are dropped at the gateway while sessions are
	// still admitted.
	SlowPath
	// Shed: a shard's governor is shedding update transmissions, or the
	// placer recently rejected an admission; new sessions are refused.
	Shed
)

// String names the rung.
func (m Mode) String() string {
	switch m {
	case Normal:
		return "normal"
	case SlowPath:
		return "slow-path"
	case Shed:
		return "shed"
	default:
		return "unknown"
	}
}

// Mode derives the gateway's current backpressure rung from backend
// health and the placement-rejection hold.
func (g *Gateway) Mode() Mode {
	if g.cfg.Clock.Now().Before(g.placeRejectUntil) {
		return Shed
	}
	mode := Normal
	for i := 0; i < g.cfg.Backend.Shards(); i++ {
		h := g.cfg.Backend.Health(i)
		if h.Shedding() {
			return Shed
		}
		if h.Overloaded() {
			mode = SlowPath
		}
	}
	return mode
}
