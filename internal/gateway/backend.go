package gateway

import (
	"fmt"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/shard"
)

// Backend is the replicated store a gateway fronts. The gateway reads
// health before certificates — a shard whose governor is degraded or
// shedding gets no broadcast fan-in at all.
type Backend interface {
	// Write forwards one client write; done (optional) observes the
	// response time or error. Writes are never shed by the gateway.
	Write(name string, data []byte, done func(time.Duration, error)) error
	// Certificate snapshots one object's bounded-staleness image.
	Certificate(name string) (core.Certificate, bool)
	// Owner maps an object to its shard index (false if unplaced).
	Owner(name string) (int, bool)
	// Shards reports the shard count.
	Shards() int
	// Health reports one shard's governor pressure.
	Health(i int) shard.Health
}

// Placer is the optional admission side of a Backend: gateways forward
// object placements and treat a rejection as a shed signal.
type Placer interface {
	Place(spec core.ObjectSpec) (int, core.Decision, error)
}

// ClusterBackend adapts a sharded cluster to the Backend interface.
type ClusterBackend struct {
	Cluster *shard.Cluster
}

func (b ClusterBackend) Write(name string, data []byte, done func(time.Duration, error)) error {
	return b.Cluster.Write(name, data, done)
}

func (b ClusterBackend) Certificate(name string) (core.Certificate, bool) {
	return b.Cluster.Certificate(name)
}

func (b ClusterBackend) Owner(name string) (int, bool) { return b.Cluster.Route(name) }

func (b ClusterBackend) Shards() int { return b.Cluster.Shards() }

func (b ClusterBackend) Health(i int) shard.Health { return b.Cluster.Health(i) }

func (b ClusterBackend) Place(spec core.ObjectSpec) (int, core.Decision, error) {
	return b.Cluster.Place(spec)
}

// ReplicaBackend adapts a single primary replica — the unsharded
// deployment — as a one-shard backend.
type ReplicaBackend struct {
	Primary *core.Primary
}

func (b ReplicaBackend) Write(name string, data []byte, done func(time.Duration, error)) error {
	b.Primary.ClientWrite(name, data, done)
	return nil
}

func (b ReplicaBackend) Certificate(name string) (core.Certificate, bool) {
	return b.Primary.Certificate(name)
}

func (b ReplicaBackend) Owner(string) (int, bool) { return 0, true }

func (b ReplicaBackend) Shards() int { return 1 }

func (b ReplicaBackend) Health(int) shard.Health {
	if !b.Primary.Running() {
		return shard.Health{Degraded: 1, Shed: 1}
	}
	gs := b.Primary.GovernorStats()
	return shard.Health{Degraded: gs.Degraded, Shed: gs.Shed}
}

func (b ReplicaBackend) Place(spec core.ObjectSpec) (int, core.Decision, error) {
	d := b.Primary.Register(spec)
	if !d.Accepted {
		return -1, d, fmt.Errorf("gateway: admission rejected: %s", d.Reason)
	}
	return 0, d, nil
}

// ObserverBackend fronts a write target with a read-only observer tier:
// writes and placements forward to the inner backend (the primary or
// cluster), while certificate reads are served by the least-stale
// observer that can still prove its bound — falling back to the inner
// backend when none can (attach-time catch-up, a partitioned chain, or
// unconverged clock sync). The gateway's broadcast tick is the hot read
// path, so this is where an observer tier turns into read scaling.
type ObserverBackend struct {
	// Inner is the authoritative backend: all writes, placements,
	// routing and health go through it, and it is the read fallback.
	Inner Backend
	// Observers is the read tier, any chain arrangement.
	Observers []*core.Observer
}

func (b ObserverBackend) Write(name string, data []byte, done func(time.Duration, error)) error {
	return b.Inner.Write(name, data, done)
}

func (b ObserverBackend) Certificate(name string) (core.Certificate, bool) {
	var best core.Certificate
	found := false
	for _, obs := range b.Observers {
		if obs == nil || !obs.Running() {
			continue
		}
		cert, ok := obs.Certificate(name)
		if !ok || !cert.Fresh() {
			continue
		}
		if !found || cert.Age+cert.Theta < best.Age+best.Theta {
			best, found = cert, true
		}
	}
	if found {
		return best, true
	}
	return b.Inner.Certificate(name)
}

func (b ObserverBackend) Owner(name string) (int, bool) { return b.Inner.Owner(name) }

func (b ObserverBackend) Shards() int { return b.Inner.Shards() }

func (b ObserverBackend) Health(i int) shard.Health { return b.Inner.Health(i) }

func (b ObserverBackend) Place(spec core.ObjectSpec) (int, core.Decision, error) {
	if p, ok := b.Inner.(Placer); ok {
		return p.Place(spec)
	}
	return -1, core.Decision{Reason: "backend does not place"},
		fmt.Errorf("gateway: inner backend %T does not place", b.Inner)
}
