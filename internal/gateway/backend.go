package gateway

import (
	"fmt"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/shard"
)

// Backend is the replicated store a gateway fronts. The gateway reads
// health before certificates — a shard whose governor is degraded or
// shedding gets no broadcast fan-in at all.
type Backend interface {
	// Write forwards one client write; done (optional) observes the
	// response time or error. Writes are never shed by the gateway.
	Write(name string, data []byte, done func(time.Duration, error)) error
	// Certificate snapshots one object's bounded-staleness image.
	Certificate(name string) (core.Certificate, bool)
	// Owner maps an object to its shard index (false if unplaced).
	Owner(name string) (int, bool)
	// Shards reports the shard count.
	Shards() int
	// Health reports one shard's governor pressure.
	Health(i int) shard.Health
}

// Placer is the optional admission side of a Backend: gateways forward
// object placements and treat a rejection as a shed signal.
type Placer interface {
	Place(spec core.ObjectSpec) (int, core.Decision, error)
}

// ClusterBackend adapts a sharded cluster to the Backend interface.
type ClusterBackend struct {
	Cluster *shard.Cluster
}

func (b ClusterBackend) Write(name string, data []byte, done func(time.Duration, error)) error {
	return b.Cluster.Write(name, data, done)
}

func (b ClusterBackend) Certificate(name string) (core.Certificate, bool) {
	return b.Cluster.Certificate(name)
}

func (b ClusterBackend) Owner(name string) (int, bool) { return b.Cluster.Route(name) }

func (b ClusterBackend) Shards() int { return b.Cluster.Shards() }

func (b ClusterBackend) Health(i int) shard.Health { return b.Cluster.Health(i) }

func (b ClusterBackend) Place(spec core.ObjectSpec) (int, core.Decision, error) {
	return b.Cluster.Place(spec)
}

// ReplicaBackend adapts a single primary replica — the unsharded
// deployment — as a one-shard backend.
type ReplicaBackend struct {
	Primary *core.Primary
}

func (b ReplicaBackend) Write(name string, data []byte, done func(time.Duration, error)) error {
	b.Primary.ClientWrite(name, data, done)
	return nil
}

func (b ReplicaBackend) Certificate(name string) (core.Certificate, bool) {
	return b.Primary.Certificate(name)
}

func (b ReplicaBackend) Owner(string) (int, bool) { return 0, true }

func (b ReplicaBackend) Shards() int { return 1 }

func (b ReplicaBackend) Health(int) shard.Health {
	if !b.Primary.Running() {
		return shard.Health{Degraded: 1, Shed: 1}
	}
	gs := b.Primary.GovernorStats()
	return shard.Health{Degraded: gs.Degraded, Shed: gs.Shed}
}

func (b ReplicaBackend) Place(spec core.ObjectSpec) (int, core.Decision, error) {
	d := b.Primary.Register(spec)
	if !d.Accepted {
		return -1, d, fmt.Errorf("gateway: admission rejected: %s", d.Reason)
	}
	return 0, d, nil
}
