package gateway

import (
	"sync/atomic"
	"time"

	"rtpb/internal/clock"
)

// Pump is the gateway's single-pump scheduler, after nano's scheduler:
// every session handler, group mutation, and broadcast tick runs on one
// goroutine-owned event loop, so the gateway state machine needs no
// locks and replays deterministically under a virtual clock. The loop
// itself is the Clock's serial executor — SimClock in tests and chaos,
// RealClock in the daemon — and the pump is the gateway's handle onto
// it: Post is the one safe entry point from foreign goroutines (listener
// accept loops, connection readers).
type Pump struct {
	clk    clock.Clock
	posted atomic.Uint64
	ticks  atomic.Uint64
	closed atomic.Bool
}

// PumpStats counts scheduler activity.
type PumpStats struct {
	// Posted counts tasks handed to the event loop via Post.
	Posted uint64
	// Ticks counts broadcast ticks pumped.
	Ticks uint64
}

func newPump(clk clock.Clock) *Pump { return &Pump{clk: clk} }

// Post schedules fn onto the pump from any goroutine. Tasks posted after
// close are dropped — the gateway they would mutate is gone.
func (p *Pump) Post(fn func()) {
	if p.closed.Load() {
		return
	}
	p.posted.Add(1)
	p.clk.Post(func() {
		if p.closed.Load() {
			return
		}
		fn()
	})
}

// Now reads the pump's clock.
func (p *Pump) Now() time.Time { return p.clk.Now() }

// Stats snapshots scheduler counters (safe from any goroutine).
func (p *Pump) Stats() PumpStats {
	return PumpStats{Posted: p.posted.Load(), Ticks: p.ticks.Load()}
}

func (p *Pump) noteTick() { p.ticks.Add(1) }

func (p *Pump) close() { p.closed.Store(true) }
