package gateway

import (
	"sort"

	"rtpb/internal/core"
)

// Frame is one broadcast delivery: a staleness certificate for one
// object, stamped with the gateway's per-object sequence number so
// consumers (and the coalescing path) can order images without parsing
// timestamps.
type Frame struct {
	// Group names the subscription this frame was fanned out through.
	Group string
	// Object names the replicated object.
	Object string
	// Seq is the gateway's per-object broadcast sequence; it increases
	// by one per certificate snapshot, so a session that sees Seq n has
	// observed every coalesced image up to n or fresher.
	Seq uint64
	// Cert is the bounded-staleness image: value, version, age at
	// snapshot, and the mode-effective δ_B admitted for the object.
	Cert core.Certificate
}

// Sink receives a session's frames. Deliver returning an error marks the
// session slow: subsequent frames are coalesced freshest-wins until a
// later flush succeeds. Close is called once when the session ends.
type Sink interface {
	Deliver(f Frame) error
	Close()
}

// SessionStats counts one session's delivery outcomes.
type SessionStats struct {
	// Delivered frames reached the sink.
	Delivered uint64
	// Coalesced frames were absorbed into the freshest-wins pending set
	// while the session was slow.
	Coalesced uint64
	// DroppedStale frames were suppressed because the session had
	// already seen a fresher image of the object.
	DroppedStale uint64
	// SlowSpells counts transitions into the slow path.
	SlowSpells uint64
}

// Session is one connected client. All methods run on the gateway pump.
type Session struct {
	id   uint64
	gw   *Gateway
	sink Sink

	groups  map[string]*Group
	lastSeq map[string]uint64 // per-object: freshest Seq delivered
	pending map[string]Frame  // per-object: freshest frame awaiting a slow sink
	slow    bool

	stats  SessionStats
	closed bool
}

// ID is the gateway-scoped session identifier (monotone, never reused).
func (s *Session) ID() uint64 { return s.id }

// Stats snapshots the session's delivery counters.
func (s *Session) Stats() SessionStats { return s.stats }

// Slow reports whether the session is on the coalescing slow path.
func (s *Session) Slow() bool { return s.slow }

// Groups lists the session's subscriptions in sorted order.
func (s *Session) Groups() []string {
	out := make([]string, 0, len(s.groups))
	for name := range s.groups {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close ends the session: membership is torn down and the sink closed.
func (s *Session) Close() { s.close(true) }

func (s *Session) close(drop bool) {
	if s.closed {
		return
	}
	s.closed = true
	for name, grp := range s.groups {
		grp.remove(s.id)
		delete(s.groups, name)
	}
	if drop {
		s.gw.dropSession(s)
	}
	s.sink.Close()
}

// offer hands the session one broadcast frame. The per-object sequence
// guard enforces monotone delivery — a coalesced session never observes
// stale-after-fresh — and a failing sink flips the session onto the
// freshest-wins slow path instead of queueing unboundedly.
func (s *Session) offer(f Frame) {
	if s.closed {
		return
	}
	if f.Seq <= s.lastSeq[f.Object] {
		s.stats.DroppedStale++
		s.gw.stats.DroppedStale++
		return
	}
	if s.slow {
		s.pend(f)
		return
	}
	if err := s.sink.Deliver(f); err != nil {
		s.slow = true
		s.stats.SlowSpells++
		s.pend(f)
		return
	}
	s.lastSeq[f.Object] = f.Seq
	s.stats.Delivered++
	s.gw.stats.Delivered++
}

// pend coalesces a frame for a slow consumer: one slot per object, the
// freshest image wins, older pendings are simply replaced.
func (s *Session) pend(f Frame) {
	if old, ok := s.pending[f.Object]; !ok || f.Seq > old.Seq {
		s.pending[f.Object] = f
	}
	s.stats.Coalesced++
	s.gw.stats.Coalesced++
}

// flush retries the pending set at the top of a broadcast tick. Success
// drains it (in sorted object order, for determinism) and returns the
// session to the fast path; the first failure keeps the remainder
// pending and the session slow.
func (s *Session) flush() {
	if s.closed || len(s.pending) == 0 {
		if !s.closed {
			s.slow = false
		}
		return
	}
	objs := make([]string, 0, len(s.pending))
	for o := range s.pending {
		objs = append(objs, o)
	}
	sort.Strings(objs)
	for _, o := range objs {
		f := s.pending[o]
		if f.Seq <= s.lastSeq[o] {
			delete(s.pending, o)
			continue
		}
		if err := s.sink.Deliver(f); err != nil {
			s.slow = true
			return
		}
		delete(s.pending, o)
		s.lastSeq[o] = f.Seq
		s.stats.Delivered++
		s.gw.stats.Delivered++
	}
	s.slow = false
}
