// Package gateway is the client-facing front tier of the RTPB stack: it
// terminates thousands of concurrent client sessions on one listener,
// routes writes through the sharded cluster's router, and broadcasts
// bounded-staleness object images — value, mode-effective δ_B, and
// last-update age, i.e. a staleness certificate — to *groups* of
// subscribed sessions. This is the paper's flagship sensor/display
// deployment at scale: few writers update replicated objects under
// temporal bounds, many readers consume certified images, and the
// replica pair never sees the read fan-out (one certificate read per
// object per broadcast tick serves every subscriber).
//
// The session/group/handler design follows lonng/nano: a per-gateway
// single-pump scheduler (Pump) dispatches every session handler onto one
// goroutine-owned event loop — the Clock's executor — so a group
// broadcast is a snapshot-then-write loop over a deterministic member
// order, not a per-session lock storm. Sessions carry the last sequence
// number they observed per object, so a slow consumer is coalesced
// (freshest-image-wins, never stale-after-fresh) instead of queued
// unboundedly.
//
// Backpressure is admission-aware end to end: when a shard's overload
// governor reports degraded or shed mode, or the cluster's placer
// rejects an admission, the gateway sheds new sessions and slow-paths
// existing ones — broadcast frames for the struggling shard are dropped
// at the gateway, so no certificate-read fan-in reaches a primary that
// is already shedding its own update schedule. Client writes are never
// dropped: the replica's own admission control and governor ladder
// remain the authority over write-side load.
package gateway

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
)

// Config assembles a Gateway.
type Config struct {
	// Clock is the executor every gateway mutation runs on; the gateway's
	// single pump is this clock's event loop (virtual in tests and chaos,
	// real in cmd/rtpbd).
	Clock clock.Clock
	// Backend is the replicated store the gateway fronts (a sharded
	// cluster, a single replica, or a remote control endpoint).
	Backend Backend
	// BroadcastPeriod is the group fan-out tick; defaults to 50ms.
	BroadcastPeriod time.Duration
	// MaxSessions caps concurrent sessions; defaults to 65536.
	MaxSessions int
	// PlacementShedHold is how long a placer rejection keeps the gateway
	// refusing new sessions (the cluster just told us it is full);
	// defaults to 5 broadcast periods.
	PlacementShedHold time.Duration
	// OnEvent, when set, observes gateway state transitions (session
	// shed, shard slow-path enter/leave) — the chaos harness logs these
	// into its deterministic replay log.
	OnEvent func(format string, args ...any)
}

func (cfg *Config) normalize() error {
	if cfg.Clock == nil {
		return errors.New("gateway: Config.Clock is required")
	}
	if cfg.Backend == nil {
		return errors.New("gateway: Config.Backend is required")
	}
	if cfg.BroadcastPeriod <= 0 {
		cfg.BroadcastPeriod = 50 * time.Millisecond
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 65536
	}
	if cfg.PlacementShedHold <= 0 {
		cfg.PlacementShedHold = 5 * cfg.BroadcastPeriod
	}
	return nil
}

// Admission errors returned by Connect.
var (
	// ErrSessionLimit reports the MaxSessions cap.
	ErrSessionLimit = errors.New("gateway: session limit reached")
	// ErrShedding reports admission-aware shed mode: a backend shard's
	// governor is shedding, or the placer recently rejected.
	ErrShedding = errors.New("gateway: shedding new sessions (backend overloaded)")
	// ErrClosed reports an operation against a closed gateway.
	ErrClosed = errors.New("gateway: closed")
)

// Stats is the gateway's cumulative activity. Sessions/PeakSessions are
// gauges; everything else only grows.
type Stats struct {
	// Sessions and PeakSessions gauge the session table.
	Sessions     int
	PeakSessions int
	// Connects, Rejected and Closed count session admissions, shed or
	// capped connection attempts, and departures.
	Connects uint64
	Rejected uint64
	Closed   uint64
	// Broadcasts counts fan-out ticks; Delivered counts frames handed to
	// session sinks; Coalesced counts frames absorbed by freshest-wins
	// coalescing on slow consumers; DroppedStale counts frames suppressed
	// because the session had already seen a fresher image.
	Broadcasts   uint64
	Delivered    uint64
	Coalesced    uint64
	DroppedStale uint64
	// DroppedShed counts object-broadcasts skipped because the owning
	// shard was degraded or shedding — load the gateway kept off a
	// struggling primary.
	DroppedShed uint64
	// WritesForwarded counts client writes routed to the backend; the
	// shed ladder never drops writes.
	WritesForwarded uint64
}

// Gateway is the front tier. Every method must run on the pump (the
// Config.Clock executor); callers on other goroutines use Post.
type Gateway struct {
	cfg  Config
	pump *Pump
	tick *clock.Periodic

	sessions     map[uint64]*Session
	sessionOrder []uint64 // ascending ids: deterministic iteration
	nextSession  uint64

	groups     map[string]*Group
	groupOrder []string // sorted names: deterministic iteration

	seq       map[string]uint64 // per-object broadcast sequence
	certReads []uint64          // per-shard certificate fetch counts

	placeRejectUntil time.Time
	shedUntilLogged  bool

	stats  Stats
	closed bool
}

// New builds and starts a gateway: the broadcast tick begins on the
// first period boundary.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:      cfg,
		pump:     newPump(cfg.Clock),
		sessions: make(map[uint64]*Session),
		groups:   make(map[string]*Group),
		seq:      make(map[string]uint64),
	}
	g.tick = clock.NewPeriodic(cfg.Clock, cfg.BroadcastPeriod, cfg.BroadcastPeriod, g.broadcast)
	return g, nil
}

// Post runs fn on the gateway's pump; it is the only method safe to call
// from outside the pump.
func (g *Gateway) Post(fn func()) { g.pump.Post(fn) }

// Pump exposes the single-pump scheduler (stats, executor assertions).
func (g *Gateway) Pump() *Pump { return g.pump }

// Stats snapshots the gateway's counters.
func (g *Gateway) Stats() Stats {
	st := g.stats
	st.Sessions = len(g.sessions)
	return st
}

// CertReads reports how many certificate fetches the broadcast loop has
// issued against one shard — the fan-in the gateway sends a primary,
// and the number that must stop growing while that shard sheds.
func (g *Gateway) CertReads(shard int) uint64 {
	if shard < 0 || shard >= len(g.certReads) {
		return 0
	}
	return g.certReads[shard]
}

// Connect admits one session, or sheds it. Admission is refused when the
// session cap is hit, when any backend shard's governor is in shed mode,
// or within the hold window after a placer rejection — the
// admission-aware half of the backpressure contract.
func (g *Gateway) Connect(sink Sink) (*Session, error) {
	if g.closed {
		return nil, ErrClosed
	}
	if len(g.sessions) >= g.cfg.MaxSessions {
		g.stats.Rejected++
		return nil, ErrSessionLimit
	}
	if mode := g.Mode(); mode == Shed {
		g.stats.Rejected++
		if !g.shedUntilLogged {
			g.shedUntilLogged = true
			g.eventf("gateway: shedding new sessions (%s)", g.shedReason())
		}
		return nil, ErrShedding
	}
	g.nextSession++
	s := &Session{
		id:      g.nextSession,
		gw:      g,
		sink:    sink,
		groups:  make(map[string]*Group),
		lastSeq: make(map[string]uint64),
		pending: make(map[string]Frame),
	}
	g.sessions[s.id] = s
	g.sessionOrder = append(g.sessionOrder, s.id) // ids are monotone: stays sorted
	g.stats.Connects++
	if n := len(g.sessions); n > g.stats.PeakSessions {
		g.stats.PeakSessions = n
	}
	return s, nil
}

// Bind declares (or extends) a group's object set; members receive one
// certificate frame per bound object per broadcast tick. Objects are
// kept sorted and deduplicated so the fan-out order is deterministic.
func (g *Gateway) Bind(group string, objects ...string) *Group {
	grp := g.group(group)
	seen := make(map[string]bool, len(grp.objects)+len(objects))
	for _, o := range grp.objects {
		seen[o] = true
	}
	for _, o := range objects {
		if o != "" && !seen[o] {
			seen[o] = true
			grp.objects = append(grp.objects, o)
		}
	}
	sort.Strings(grp.objects)
	return grp
}

// Subscribe adds a session to a group (created empty if unknown).
func (g *Gateway) Subscribe(s *Session, group string) error {
	if g.closed {
		return ErrClosed
	}
	if s == nil || s.closed {
		return errors.New("gateway: subscribe on closed session")
	}
	grp := g.group(group)
	if _, ok := s.groups[group]; ok {
		return nil
	}
	s.groups[group] = grp
	grp.add(s)
	return nil
}

// Unsubscribe removes a session from a group.
func (g *Gateway) Unsubscribe(s *Session, group string) {
	if s == nil {
		return
	}
	if grp, ok := s.groups[group]; ok {
		delete(s.groups, group)
		grp.remove(s.id)
	}
}

// Groups lists every group in deterministic (sorted) order.
func (g *Gateway) Groups() []*Group {
	out := make([]*Group, 0, len(g.groupOrder))
	for _, name := range g.groupOrder {
		out = append(out, g.groups[name])
	}
	return out
}

// Write forwards one client write to the backend. Writes ride through
// regardless of gateway mode: shedding drops broadcast frames, never
// writes — the replica's admission control and governor own write-side
// backpressure.
func (g *Gateway) Write(name string, data []byte, done func(time.Duration, error)) error {
	if g.closed {
		return ErrClosed
	}
	g.stats.WritesForwarded++
	return g.cfg.Backend.Write(name, data, done)
}

// Read returns the backend's current certificate for one object (the
// same unit broadcast ticks deliver), bypassing the shed ladder: a
// direct read is client-paced, not gateway-amplified.
func (g *Gateway) Read(name string) (core.Certificate, bool) {
	if g.closed {
		return core.Certificate{}, false
	}
	return g.cfg.Backend.Certificate(name)
}

// Place forwards an object admission to the backend's placer. A
// rejection arms the placement shed hold: the cluster just declared
// itself full, so new sessions are refused until the hold expires.
func (g *Gateway) Place(spec core.ObjectSpec) (int, core.Decision, error) {
	if g.closed {
		return -1, core.Decision{}, ErrClosed
	}
	pl, ok := g.cfg.Backend.(Placer)
	if !ok {
		return -1, core.Decision{}, errors.New("gateway: backend does not support placement")
	}
	idx, d, err := pl.Place(spec)
	if err != nil {
		g.placeRejectUntil = g.cfg.Clock.Now().Add(g.cfg.PlacementShedHold)
		g.eventf("gateway: placement rejected (%v); shedding new sessions for %v",
			err, g.cfg.PlacementShedHold)
	}
	return idx, d, err
}

// Close stops the broadcast tick and closes every session.
func (g *Gateway) Close() {
	if g.closed {
		return
	}
	g.closed = true
	g.tick.Stop()
	for _, id := range g.sessionOrder {
		if s, ok := g.sessions[id]; ok {
			s.close(false)
		}
	}
	g.sessions = map[uint64]*Session{}
	g.sessionOrder = nil
	g.pump.close()
}

// group returns (creating if needed) a named group.
func (g *Gateway) group(name string) *Group {
	if grp, ok := g.groups[name]; ok {
		return grp
	}
	grp := &Group{name: name, members: make(map[uint64]*Session)}
	g.groups[name] = grp
	g.groupOrder = append(g.groupOrder, name)
	sort.Strings(g.groupOrder)
	return grp
}

// dropSession unlinks a departing session from the gateway tables.
func (g *Gateway) dropSession(s *Session) {
	if _, ok := g.sessions[s.id]; !ok {
		return
	}
	delete(g.sessions, s.id)
	for i, id := range g.sessionOrder {
		if id == s.id {
			g.sessionOrder = append(g.sessionOrder[:i], g.sessionOrder[i+1:]...)
			break
		}
	}
	g.stats.Closed++
}

// broadcast is one fan-out tick: flush coalesced state toward recovered
// consumers, then snapshot each group's bound objects once and walk the
// member list. One certificate read per object serves every subscriber —
// the primary never sees the session count.
func (g *Gateway) broadcast() {
	if g.closed {
		return
	}
	g.pump.noteTick()
	g.stats.Broadcasts++
	for _, id := range g.sessionOrder {
		g.sessions[id].flush()
	}
	frames := make(map[string]*Frame) // per-tick cache: nil entry = dropped
	for _, name := range g.groupOrder {
		grp := g.groups[name]
		if len(grp.members) == 0 || len(grp.objects) == 0 {
			continue
		}
		grp.stats.Broadcasts++
		for _, obj := range grp.objects {
			f, ok := g.frameFor(obj, frames)
			if !ok {
				continue
			}
			f.Group = name
			for _, sid := range grp.order {
				grp.members[sid].offer(f)
			}
			grp.stats.Frames++
		}
	}
	if g.Mode() != Shed {
		g.shedUntilLogged = false
	}
}

// frameFor snapshots one object's certificate for this tick, reading it
// at most once per tick across groups. An object whose owning shard is
// degraded or shedding is slow-pathed: the frame is dropped here and no
// read reaches that shard's primary.
func (g *Gateway) frameFor(obj string, cache map[string]*Frame) (Frame, bool) {
	if f, ok := cache[obj]; ok {
		if f == nil {
			return Frame{}, false
		}
		return *f, true
	}
	owner, ok := g.cfg.Backend.Owner(obj)
	if !ok {
		cache[obj] = nil
		return Frame{}, false
	}
	if h := g.cfg.Backend.Health(owner); h.Overloaded() || h.Shedding() {
		g.stats.DroppedShed++
		cache[obj] = nil
		return Frame{}, false
	}
	cert, ok := g.cfg.Backend.Certificate(obj)
	g.noteCertRead(owner)
	if !ok {
		cache[obj] = nil
		return Frame{}, false
	}
	g.seq[obj]++
	f := Frame{Object: obj, Seq: g.seq[obj], Cert: cert}
	cache[obj] = &f
	return f, true
}

func (g *Gateway) noteCertRead(shard int) {
	if shard < 0 {
		return
	}
	for len(g.certReads) <= shard {
		g.certReads = append(g.certReads, 0)
	}
	g.certReads[shard]++
}

func (g *Gateway) eventf(format string, args ...any) {
	if g.cfg.OnEvent != nil {
		g.cfg.OnEvent(format, args...)
	}
}

// shedReason names what put the gateway in shed mode (for event logs).
func (g *Gateway) shedReason() string {
	if g.cfg.Clock.Now().Before(g.placeRejectUntil) {
		return "placer rejection hold"
	}
	for i := 0; i < g.cfg.Backend.Shards(); i++ {
		if g.cfg.Backend.Health(i).Shedding() {
			return fmt.Sprintf("shard %d governor shedding", i)
		}
	}
	return "backend overloaded"
}
