package gateway

import "sort"

// GroupStats counts one group's broadcast activity.
type GroupStats struct {
	// Broadcasts counts ticks on which the group had members and objects.
	Broadcasts uint64
	// Frames counts object-frames fanned out (one per object per tick,
	// regardless of member count — the read amplification the gateway
	// absorbs).
	Frames uint64
}

// Group is a named subscription set: every member receives one
// certificate frame per bound object per broadcast tick. Membership and
// object sets iterate in sorted order so fan-out is deterministic under
// the chaos harness's byte-identical replay requirement.
type Group struct {
	name    string
	objects []string // sorted, deduplicated
	members map[uint64]*Session
	order   []uint64 // ascending session ids
	stats   GroupStats
}

// Name is the group's identifier.
func (g *Group) Name() string { return g.name }

// Objects lists the bound objects in sorted order (a copy).
func (g *Group) Objects() []string {
	return append([]string(nil), g.objects...)
}

// Members reports the current member count.
func (g *Group) Members() int { return len(g.members) }

// Stats snapshots the group's broadcast counters.
func (g *Group) Stats() GroupStats { return g.stats }

func (g *Group) add(s *Session) {
	if _, ok := g.members[s.id]; ok {
		return
	}
	g.members[s.id] = s
	i := sort.Search(len(g.order), func(i int) bool { return g.order[i] >= s.id })
	g.order = append(g.order, 0)
	copy(g.order[i+1:], g.order[i:])
	g.order[i] = s.id
}

func (g *Group) remove(id uint64) {
	if _, ok := g.members[id]; !ok {
		return
	}
	delete(g.members, id)
	i := sort.Search(len(g.order), func(i int) bool { return g.order[i] >= id })
	if i < len(g.order) && g.order[i] == id {
		g.order = append(g.order[:i], g.order[i+1:]...)
	}
}
