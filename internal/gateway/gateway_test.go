package gateway

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/shard"
	"rtpb/internal/temporal"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

// easySpec is cheap enough that broadcast behaviour, not admission
// capacity, dominates the test.
func easySpec(name string) core.ObjectSpec {
	return core.ObjectSpec{
		Name:         name,
		Size:         64,
		UpdatePeriod: ms(20),
		Constraint:   temporal.ExternalConstraint{DeltaP: ms(20), DeltaB: ms(120)},
	}
}

// recordSink captures delivered frames; fail (when set) simulates a
// slow consumer by rejecting deliveries.
type recordSink struct {
	frames []Frame
	fail   func() bool
	closed bool
}

func (r *recordSink) Deliver(f Frame) error {
	if r.fail != nil && r.fail() {
		return errors.New("sink backlogged")
	}
	r.frames = append(r.frames, f)
	return nil
}

func (r *recordSink) Close() { r.closed = true }

// newClusterGateway builds a sim cluster plus a gateway fronting it on
// the cluster's own clock.
func newClusterGateway(t *testing.T, ccfg shard.Config, gcfg Config) (*shard.Cluster, *Gateway) {
	t.Helper()
	c, err := shard.NewCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	gcfg.Clock = c.Clock()
	gcfg.Backend = ClusterBackend{Cluster: c}
	gw, err := New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return c, gw
}

// place admits an object and pins it to one shard so tests control the
// hot/quiet split deterministically.
func place(t *testing.T, c *shard.Cluster, spec core.ObjectSpec, want int) {
	t.Helper()
	idx, _, err := c.Place(spec)
	if err != nil {
		t.Fatalf("place %q: %v", spec.Name, err)
	}
	if idx != want {
		if err := c.Migrate(spec.Name, want); err != nil {
			t.Fatalf("migrate %q to shard %d: %v", spec.Name, want, err)
		}
	}
}

// TestBroadcastCertificateFreshness is the group-broadcast property
// test: under zero loss, every frame a subscribed session observes
// carries age ≤ the admitted (mode-effective) δ_B plus one broadcast
// period, per-object sequence numbers are strictly monotone per session
// (coalescing can never deliver stale-after-fresh), and the certificate
// fan-in to the replica tier is one read per object per tick no matter
// how many sessions subscribe.
func TestBroadcastCertificateFreshness(t *testing.T) {
	const period = 20 // broadcast period, ms
	c, gw := newClusterGateway(t,
		shard.Config{Shards: 2, Seed: 11},
		Config{BroadcastPeriod: ms(period)})

	objects := []string{"alt", "speed", "heading", "fuel"}
	for i, name := range objects {
		place(t, c, easySpec(name), i%2)
	}
	gw.Bind("cockpit", "alt", "speed")
	gw.Bind("engine", "heading", "fuel")

	sinks := make([]*recordSink, 0, 20)
	for i := 0; i < 20; i++ {
		sink := &recordSink{}
		s, err := gw.Connect(sink)
		if err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
		group := "cockpit"
		if i%2 == 1 {
			group = "engine"
		}
		if err := gw.Subscribe(s, group); err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, sink)
	}

	for _, name := range objects {
		c.WriteEvery(name, ms(10))
	}
	c.RunFor(time.Second)

	for i, sink := range sinks {
		if len(sink.frames) == 0 {
			t.Fatalf("session %d received no frames", i)
		}
		lastSeq := map[string]uint64{}
		lastVersion := map[string]time.Time{}
		for _, f := range sink.frames {
			if f.Cert.Bound <= 0 {
				t.Fatalf("session %d: frame for %q carries no admitted bound", i, f.Object)
			}
			if limit := f.Cert.Bound + ms(period); f.Cert.Age > limit {
				t.Fatalf("session %d: %q frame age %v exceeds δ_B+period %v",
					i, f.Object, f.Cert.Age, limit)
			}
			if f.Seq <= lastSeq[f.Object] {
				t.Fatalf("session %d: %q seq %d after %d (stale-after-fresh)",
					i, f.Object, f.Seq, lastSeq[f.Object])
			}
			if f.Cert.Version.Before(lastVersion[f.Object]) {
				t.Fatalf("session %d: %q version regressed", i, f.Object)
			}
			lastSeq[f.Object] = f.Seq
			lastVersion[f.Object] = f.Cert.Version
		}
	}

	// Fan-in bound: the broadcast loop reads each object at most once per
	// tick, so total certificate reads never exceed objects × ticks —
	// independent of the 20 subscribed sessions.
	st := gw.Stats()
	reads := gw.CertReads(0) + gw.CertReads(1)
	if maxReads := uint64(len(objects)) * st.Broadcasts; reads > maxReads {
		t.Fatalf("certificate fan-in %d exceeds objects×ticks %d", reads, maxReads)
	}
	if reads == 0 || st.Delivered == 0 {
		t.Fatalf("no broadcast activity: reads=%d delivered=%d", reads, st.Delivered)
	}
}

// TestSlowConsumerCoalescing pins the freshest-image-wins contract: a
// session whose sink backlogs is slow-pathed — frames coalesce, one
// pending image per object — and on recovery it receives only the
// newest image, never a stale one, never an unbounded queue.
func TestSlowConsumerCoalescing(t *testing.T) {
	c, gw := newClusterGateway(t,
		shard.Config{Shards: 1, Seed: 3},
		Config{BroadcastPeriod: ms(10)})
	place(t, c, easySpec("alt"), 0)
	gw.Bind("g", "alt")

	clk := c.Clock()
	start := clk.Now()
	failing := func() bool {
		since := clk.Now().Sub(start)
		return since > ms(200) && since < ms(500)
	}
	sink := &recordSink{fail: failing}
	s, err := gw.Connect(sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.Subscribe(s, "g"); err != nil {
		t.Fatal(err)
	}
	c.WriteEvery("alt", ms(5))
	c.RunFor(time.Second)

	st := s.Stats()
	if st.SlowSpells == 0 {
		t.Fatal("session never entered the slow path")
	}
	if st.Coalesced == 0 {
		t.Fatal("no frames were coalesced while slow")
	}
	// The ~300ms outage spans ~30 broadcast ticks; coalescing must have
	// collapsed them into far fewer deliveries than a queue would hold.
	if st.Delivered+10 > st.Delivered+st.Coalesced {
		t.Fatalf("coalescing absorbed too little: delivered=%d coalesced=%d",
			st.Delivered, st.Coalesced)
	}
	var last uint64
	jumped := false
	for _, f := range sink.frames {
		if f.Seq <= last {
			t.Fatalf("stale-after-fresh: seq %d after %d", f.Seq, last)
		}
		if last != 0 && f.Seq > last+1 {
			jumped = true // coalescing skipped intermediate images
		}
		last = f.Seq
	}
	if !jumped {
		t.Fatal("delivered sequence has no gap: coalescing never skipped a stale image")
	}
}

// shedCluster builds a 2-shard cluster with an aggressive governor and
// a client-write hotspot pinned to shard 0 that provably overloads it,
// plus a quiet object on shard 1.
func shedCluster(t *testing.T) (*shard.Cluster, *Gateway) {
	c, gw := newClusterGateway(t,
		shard.Config{
			Shards: 2,
			Seed:   7,
			// Expensive client ops give the hotspot real CPU weight.
			Costs: core.CostModel{
				ClientOp:   2 * time.Millisecond,
				UpdateSend: 400 * time.Microsecond,
				PerByte:    2 * time.Nanosecond,
			},
			Governor: core.GovernorConfig{
				Enable:           true,
				Interval:         ms(10),
				DemoteStaleness:  0.15,
				PromoteStaleness: 0.05,
				// Effectively never promote: the test wants a stable shed
				// plateau, not the recovery ramp (chaos covers that).
				PromoteHold: 100000,
			},
			// The hotspot must be admissible for the governor to have
			// something real to shed.
			DisableAdmissionControl: true,
		},
		Config{BroadcastPeriod: ms(20)})

	place(t, c, easySpec("hot0"), 0)
	place(t, c, easySpec("hot1"), 0)
	place(t, c, easySpec("quiet"), 1)
	gw.Bind("hot", "hot0", "hot1")
	gw.Bind("quiet", "quiet")

	// Steady quiet-side traffic, and a hotspot write storm on shard 0:
	// 2ms of CPU per write, two objects written every 1ms — a sustained
	// 4x overload client writes alone impose, which shedding update
	// transmissions cannot relieve. The ladder must bottom out at shed
	// and stay there.
	c.WriteEvery("quiet", ms(20))
	c.WriteEvery("hot0", ms(1))
	c.WriteEvery("hot1", ms(1))
	return c, gw
}

// TestShedModeBackpressure is the admission-aware backpressure test: a
// shard whose governor sheds stops receiving gateway broadcast fan-in
// entirely and new sessions are refused, while the quiet shard's
// broadcasts continue and writes — including to the shedding shard —
// are still forwarded.
func TestShedModeBackpressure(t *testing.T) {
	c, gw := shedCluster(t)

	hotSink, quietSink := &recordSink{}, &recordSink{}
	for group, sink := range map[string]*recordSink{"hot": hotSink, "quiet": quietSink} {
		s, err := gw.Connect(sink)
		if err != nil {
			t.Fatal(err)
		}
		if err := gw.Subscribe(s, group); err != nil {
			t.Fatal(err)
		}
	}

	// Drive the cluster until shard 0's governor sheds.
	deadline := 3 * time.Second
	var elapsed time.Duration
	for ; elapsed < deadline && !c.Health(0).Shedding(); elapsed += ms(50) {
		c.RunFor(ms(50))
	}
	if !c.Health(0).Shedding() {
		t.Fatalf("shard 0 never shed under the hotspot (health %+v)", c.Health(0))
	}
	if got := gw.Mode(); got != Shed {
		t.Fatalf("gateway mode = %v with a shedding shard, want Shed", got)
	}

	// New sessions are refused while shedding.
	if _, err := gw.Connect(&recordSink{}); !errors.Is(err, ErrShedding) {
		t.Fatalf("Connect under shed = %v, want ErrShedding", err)
	}
	rejected := gw.Stats().Rejected
	if rejected == 0 {
		t.Fatal("shed connection not counted as rejected")
	}

	// The shed shard stops receiving broadcast fan-in: certificate reads
	// against shard 0 freeze while shard 1's keep growing.
	reads0, reads1 := gw.CertReads(0), gw.CertReads(1)
	quietBefore := len(quietSink.frames)
	c.RunFor(ms(300))
	if !c.Health(0).Shedding() {
		t.Fatalf("shard 0 left shed during the probe window (health %+v)", c.Health(0))
	}
	if got := gw.CertReads(0); got != reads0 {
		t.Fatalf("shed shard still receives broadcast fan-in: certificate reads %d -> %d", reads0, got)
	}
	if got := gw.CertReads(1); got <= reads1 {
		t.Fatalf("quiet shard's broadcast stalled: certificate reads stuck at %d", got)
	}
	if len(quietSink.frames) <= quietBefore {
		t.Fatal("quiet group's sessions stopped receiving frames")
	}
	if gw.Stats().DroppedShed == 0 {
		t.Fatal("no frames recorded as shed-dropped")
	}

	// Writes are never shed by the gateway: a write to the overloaded
	// shard is still forwarded and accepted. The hotspot writers are
	// stopped first so the probe write's completion callback isn't stuck
	// behind seconds of simulated CPU backlog (PromoteHold is pinned high
	// enough that the shard stays shed regardless).
	c.StopWriters()
	delivered := false
	if err := gw.Write("hot0", []byte("still-writable"), func(_ time.Duration, err error) {
		if err != nil {
			t.Errorf("write to shed shard failed: %v", err)
		}
		delivered = true
	}); err != nil {
		t.Fatalf("gateway refused a write under shed: %v", err)
	}
	c.RunFor(8 * time.Second)
	if !delivered {
		t.Fatal("write to shed shard never completed")
	}
	if !c.Health(0).Shedding() {
		t.Fatalf("shard 0 left shed after writers stopped (health %+v)", c.Health(0))
	}
}

// TestSessionLimitAndPlacementHold covers the two non-governor shed
// triggers: the session cap, and the placer-rejection hold window.
func TestSessionLimitAndPlacementHold(t *testing.T) {
	c, gw := newClusterGateway(t,
		shard.Config{Shards: 1, Seed: 5},
		Config{BroadcastPeriod: ms(20), MaxSessions: 2, PlacementShedHold: ms(500)})

	for i := 0; i < 2; i++ {
		if _, err := gw.Connect(&recordSink{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := gw.Connect(&recordSink{}); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("Connect over cap = %v, want ErrSessionLimit", err)
	}

	// An impossible spec must be rejected by admission; the rejection
	// arms the shed hold even though no governor is involved.
	bad := core.ObjectSpec{
		Name:         "impossible",
		Size:         64,
		UpdatePeriod: time.Microsecond,
		Constraint:   temporal.ExternalConstraint{DeltaP: time.Microsecond, DeltaB: 2 * time.Microsecond},
	}
	if _, _, err := gw.Place(bad); err == nil {
		t.Fatal("impossible spec was admitted")
	}
	if got := gw.Mode(); got != Shed {
		t.Fatalf("mode after placement rejection = %v, want Shed", got)
	}
	c.RunFor(ms(600))
	if got := gw.Mode(); got != Normal {
		t.Fatalf("mode after hold expiry = %v, want Normal", got)
	}
}

// TestGatewayCloseClosesSessions pins teardown: closing the gateway
// closes every session sink and stops the broadcast tick.
func TestGatewayCloseClosesSessions(t *testing.T) {
	c, gw := newClusterGateway(t,
		shard.Config{Shards: 1, Seed: 2},
		Config{BroadcastPeriod: ms(20)})
	place(t, c, easySpec("alt"), 0)
	gw.Bind("g", "alt")
	sinks := []*recordSink{{}, {}}
	for _, sink := range sinks {
		s, err := gw.Connect(sink)
		if err != nil {
			t.Fatal(err)
		}
		if err := gw.Subscribe(s, "g"); err != nil {
			t.Fatal(err)
		}
	}
	gw.Close()
	for i, sink := range sinks {
		if !sink.closed {
			t.Fatalf("session %d's sink not closed", i)
		}
	}
	if _, err := gw.Connect(&recordSink{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Connect after Close = %v, want ErrClosed", err)
	}
	ticks := gw.Stats().Broadcasts
	c.RunFor(ms(200))
	if got := gw.Stats().Broadcasts; got != ticks {
		t.Fatalf("broadcast tick survived Close: %d -> %d", ticks, got)
	}
}

// TestDeterministicBroadcastOrder pins the replay property the chaos
// harness depends on: two identically-seeded cluster+gateway runs
// deliver byte-identical frame streams.
func TestDeterministicBroadcastOrder(t *testing.T) {
	run := func() []string {
		c, gw := newClusterGateway(t,
			shard.Config{Shards: 2, Seed: 9},
			Config{BroadcastPeriod: ms(20)})
		for i, name := range []string{"a", "b", "c"} {
			place(t, c, easySpec(name), i%2)
		}
		gw.Bind("g", "a", "b", "c")
		sinks := make([]*recordSink, 6)
		for i := range sinks {
			sinks[i] = &recordSink{}
			s, err := gw.Connect(sinks[i])
			if err != nil {
				t.Fatal(err)
			}
			if err := gw.Subscribe(s, "g"); err != nil {
				t.Fatal(err)
			}
		}
		for _, name := range []string{"a", "b", "c"} {
			c.WriteEvery(name, ms(10))
		}
		c.RunFor(500 * time.Millisecond)
		var out []string
		for i, sink := range sinks {
			for _, f := range sink.frames {
				out = append(out, fmt.Sprintf("%d %s %s %d %s %v %v",
					i, f.Group, f.Object, f.Seq, f.Cert.Version.Format(time.RFC3339Nano),
					f.Cert.Age, f.Cert.Bound))
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no frames recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("replay diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at frame %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}
