// Quickstart: replicate one sensor object from a primary to a backup with
// a temporal-consistency guarantee, and verify the guarantee held.
//
// The cluster runs in deterministic virtual time on a simulated LAN, so
// the program finishes instantly and prints the same numbers every run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"rtpb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A two-replica RTPB deployment on a simulated LAN: 2ms propagation,
	// 1ms jitter, no loss.
	cluster, err := rtpb.NewSimCluster(rtpb.SimClusterConfig{
		Seed: 1,
		Link: rtpb.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond},
	})
	if err != nil {
		return err
	}

	// Register an altitude sensor: the client promises to write every
	// 40ms, the primary's copy may lag the world by at most 50ms, and
	// the backup's by at most 200ms.
	spec := rtpb.ObjectSpec{
		Name:         "altitude",
		Size:         16,
		UpdatePeriod: 40 * time.Millisecond,
		Constraint: rtpb.ExternalConstraint{
			DeltaP: 50 * time.Millisecond,
			DeltaB: 200 * time.Millisecond,
		},
	}
	decision := cluster.Register(spec)
	if !decision.Accepted {
		return fmt.Errorf("admission control rejected the object: %s", decision.Reason)
	}
	fmt.Printf("admitted %q: backup-update period r = %v (window δ = %v, ℓ = %v)\n",
		spec.Name, decision.UpdatePeriod, spec.Constraint.Delta(), 3*time.Millisecond)

	// Verify the temporal-consistency guarantee with a monitor fed by
	// the backup's applied updates.
	monitor := rtpb.NewMonitor()
	monitor.TrackExternal("backup", spec.Name, spec.Constraint.DeltaB)
	cluster.Backup.OnApply = func(_ uint32, name string, _ uint32, _ uint64, version, at time.Time) {
		monitor.RecordUpdate("backup", name, version, at)
	}

	// A client co-located with the primary senses the environment every
	// 40ms.
	writer := cluster.WriteEvery(spec.Name, spec.UpdatePeriod, func(i int) []byte {
		return []byte(fmt.Sprintf("%d ft", 9000+i))
	})
	cluster.RunFor(10 * time.Second)
	writer.Stop()
	monitor.FinishAt(cluster.Clock.Now())

	value, version, ok := cluster.Backup.Value(spec.Name)
	if !ok {
		return fmt.Errorf("backup holds no value")
	}
	fmt.Printf("backup copy after 10s: %q (version %v)\n",
		value, version.Format("15:04:05.000"))

	report, _ := monitor.ExternalReport("backup", spec.Name)
	fmt.Printf("backup external temporal consistency: %s\n", report)
	if report.Consistent() {
		fmt.Println("guarantee held: the backup never lagged the world by more than δB")
	} else {
		fmt.Println("guarantee VIOLATED")
	}
	return nil
}
