// Failover: the full Section 4.4 story — heartbeat failure detection,
// takeover by the backup, name-service update, standby client activation,
// and recruitment of a replacement backup.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"rtpb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := rtpb.NewSimCluster(rtpb.SimClusterConfig{
		Seed: 21,
		Link: rtpb.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond},
	})
	if err != nil {
		return err
	}
	names := rtpb.NewNameService()
	if err := names.Set("turbine", "primary:7000", 1); err != nil {
		return err
	}

	if d := cluster.Register(rtpb.ObjectSpec{
		Name:         "rpm",
		Size:         8,
		UpdatePeriod: 40 * time.Millisecond,
		Constraint: rtpb.ExternalConstraint{
			DeltaP: 50 * time.Millisecond,
			DeltaB: 250 * time.Millisecond,
		},
	}); !d.Accepted {
		return fmt.Errorf("rejected: %s", d.Reason)
	}

	// The backup pings the primary and promotes itself when the primary
	// goes silent.
	var promoted *rtpb.Primary
	detector, err := rtpb.NewDetector(cluster.Clock, rtpb.DefaultDetectorConfig(),
		cluster.Backup.SendPing,
		func() {
			at := cluster.Clock.Now()
			p, perr := rtpb.Promote(cluster.Backup, rtpb.PromoteOptions{
				Service:  "turbine",
				SelfAddr: "backup:7000",
				Names:    names,
				ActivateClient: func(*rtpb.Primary) {
					fmt.Printf("t=%s  standby client application activated on the backup host\n",
						at.Format("05.000"))
				},
			})
			if perr != nil {
				log.Fatalf("promotion failed: %v", perr)
			}
			promoted = p
			fmt.Printf("t=%s  backup promoted itself to primary (epoch %d)\n",
				at.Format("05.000"), p.Epoch())
		})
	if err != nil {
		return err
	}
	cluster.Backup.OnPingAck = detector.OnAck
	detector.Start()

	// Phase 1: normal operation.
	writer := cluster.WriteEvery("rpm", 40*time.Millisecond, func(i int) []byte {
		return []byte(fmt.Sprintf("%d", 3000+i))
	})
	cluster.RunFor(2 * time.Second)
	v, _, _ := cluster.Backup.Value("rpm")
	fmt.Printf("t=%s  replicating normally; backup holds rpm=%s\n",
		cluster.Clock.Now().Format("05.000"), v)

	// Phase 2: the primary host dies.
	writer.Stop()
	cluster.CrashPrimary()
	fmt.Printf("t=%s  PRIMARY CRASHED\n", cluster.Clock.Now().Format("05.000"))
	cluster.RunFor(2 * time.Second)
	if promoted == nil {
		return fmt.Errorf("failover never happened")
	}
	addr, epoch, _ := names.Lookup("turbine")
	fmt.Printf("t=%s  name service now points at %s (epoch %d)\n",
		cluster.Clock.Now().Format("05.000"), addr, epoch)
	rec, _, _ := promoted.Value("rpm")
	fmt.Printf("t=%s  new primary serves recovered state rpm=%s\n",
		cluster.Clock.Now().Format("05.000"), rec)

	// Phase 3: the new primary keeps serving clients while it waits to
	// recruit, then a fresh backup node joins.
	newWriter := cluster.WriteEveryTo(promoted, "rpm", 40*time.Millisecond, func(i int) []byte {
		return []byte(fmt.Sprintf("%d", 5000+i))
	})
	recruitPort, err := cluster.AddHost("recruit")
	if err != nil {
		return err
	}
	recruit, err := rtpb.NewBackup(rtpb.Config{
		Clock: cluster.Clock,
		Port:  recruitPort,
		Peer:  "backup:7000",
		Ell:   5 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := rtpb.Recruit(promoted, "recruit:7000"); err != nil {
		return err
	}
	cluster.RunFor(2 * time.Second)
	newWriter.Stop()
	rv, _, ok := recruit.Value("rpm")
	if !ok {
		return fmt.Errorf("recruited backup holds no state")
	}
	fmt.Printf("t=%s  recruited backup replicating again; holds rpm=%s (epoch %d)\n",
		cluster.Clock.Now().Format("05.000"), rv, recruit.Epoch())
	fmt.Println("failover complete: detect → promote → recover → recruit")
	return nil
}
