// Multibackup: the paper's future-work extensions in one run — a primary
// replicating to TWO backups, a mixed object table where one object uses
// the hybrid active/passive path (client writes wait for backup acks),
// online removal of a failed backup, and recruitment of a replacement.
//
//	go run ./examples/multibackup
package main

import (
	"fmt"
	"log"
	"time"

	"rtpb"
	"rtpb/internal/clock"
	"rtpb/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clk := clock.NewSim()
	net := netsim.New(clk, 33)
	if err := net.SetDefaultLink(rtpb.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond}); err != nil {
		return err
	}
	stack := func(host string) (*rtpb.PortProtocol, *netsim.Endpoint, error) {
		ep, err := net.Endpoint(host)
		if err != nil {
			return nil, nil, err
		}
		port, err := rtpb.NewStack(ep)
		return port, ep, err
	}

	pPort, _, err := stack("primary")
	if err != nil {
		return err
	}
	aPort, aEP, err := stack("backupA")
	if err != nil {
		return err
	}
	bPort, _, err := stack("backupB")
	if err != nil {
		return err
	}

	primary, err := rtpb.NewPrimary(rtpb.Config{
		Clock: clk,
		Port:  pPort,
		Peers: []rtpb.Addr{"backupA:7000", "backupB:7000"},
		Ell:   5 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	backupA, err := rtpb.NewBackup(rtpb.Config{Clock: clk, Port: aPort, Peer: "primary:7000", Ell: 5 * time.Millisecond})
	if err != nil {
		return err
	}
	backupB, err := rtpb.NewBackup(rtpb.Config{Clock: clk, Port: bPort, Peer: "primary:7000", Ell: 5 * time.Millisecond})
	if err != nil {
		return err
	}
	_ = backupA

	// A plain telemetry object and a critical setpoint: the setpoint's
	// writes are acknowledged by every live backup before the client
	// proceeds (hybrid active/passive).
	plain := rtpb.ObjectSpec{
		Name: "telemetry", Size: 32, UpdatePeriod: 40 * time.Millisecond,
		Constraint: rtpb.ExternalConstraint{DeltaP: 50 * time.Millisecond, DeltaB: 250 * time.Millisecond},
	}
	critical := plain
	critical.Name = "setpoint"
	critical.Critical = true
	for _, s := range []rtpb.ObjectSpec{plain, critical} {
		if d := primary.Register(s); !d.Accepted {
			return fmt.Errorf("%s rejected: %s", s.Name, d.Reason)
		}
	}
	clk.RunFor(50 * time.Millisecond)

	var plainLat, critLat time.Duration
	primary.ClientWrite("telemetry", []byte("120C"), func(l time.Duration, err error) { plainLat = l })
	primary.ClientWrite("setpoint", []byte("95C"), func(l time.Duration, err error) {
		if err != nil {
			log.Fatalf("critical write: %v", err)
		}
		critLat = l
	})
	clk.RunFor(100 * time.Millisecond)
	fmt.Printf("write latency: telemetry (passive) %v, setpoint (critical, 2 backups acked) %v\n",
		plainLat, critLat)
	for name, b := range map[string]*rtpb.Backup{"backupA": backupA, "backupB": backupB} {
		v, _, _ := b.Value("setpoint")
		fmt.Printf("%s holds setpoint=%s\n", name, v)
	}

	// Backup A's host dies. The detector path is exercised in
	// examples/failover; here the operator removes it and recruits a
	// replacement online.
	aEP.SetDown(true)
	primary.SetPeerAlive("backupA:7000", false)
	primary.RemovePeer("backupA:7000")
	fmt.Printf("backupA failed and was removed; peers now %v\n", primary.Peers())

	primary.ClientWrite("setpoint", []byte("97C"), func(l time.Duration, err error) {
		if err != nil {
			log.Fatalf("critical write after failure: %v", err)
		}
		fmt.Printf("critical write still completes with one backup: %v\n", l)
	})
	clk.RunFor(100 * time.Millisecond)

	cPort, _, err := stack("backupC")
	if err != nil {
		return err
	}
	backupC, err := rtpb.NewBackup(rtpb.Config{Clock: clk, Port: cPort, Peer: "primary:7000", Ell: 5 * time.Millisecond})
	if err != nil {
		return err
	}
	if err := primary.AddPeer("backupC:7000"); err != nil {
		return err
	}
	clk.RunFor(100 * time.Millisecond)
	v, _, ok := backupC.Value("setpoint")
	if !ok {
		return fmt.Errorf("recruit missing state")
	}
	fmt.Printf("backupC recruited online, state-transferred setpoint=%s; peers %v\n", v, primary.Peers())

	if v, _, _ := backupB.Value("setpoint"); string(v) != "97C" {
		return fmt.Errorf("backupB diverged: %q", v)
	}
	fmt.Println("replication continues to both backups")
	return nil
}
