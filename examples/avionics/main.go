// Avionics: inter-object temporal consistency (Section 3 of the paper).
//
// The paper's motivating example: when an airplane takes off there is a
// time bound between accelerating and lifting off — the runway is finite.
// The acceleration and lift sensors are therefore related objects: the
// replicated images of the pair must never be more than δ_ij apart in
// time, at the primary AND at the backup, or a failover could hand the
// new primary an incoherent picture of the take-off.
//
//	go run ./examples/avionics
package main

import (
	"fmt"
	"log"
	"time"

	"rtpb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := rtpb.NewSimCluster(rtpb.SimClusterConfig{
		Seed: 7,
		Link: rtpb.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond, LossProb: 0.01},
	})
	if err != nil {
		return err
	}

	// Both sensors are sampled every 20ms with loose external bounds;
	// the bite comes from the inter-object constraint below.
	for _, name := range []string{"acceleration", "lift"} {
		d := cluster.Register(rtpb.ObjectSpec{
			Name:         name,
			Size:         8,
			UpdatePeriod: 20 * time.Millisecond,
			Constraint: rtpb.ExternalConstraint{
				DeltaP: 40 * time.Millisecond,
				DeltaB: 400 * time.Millisecond,
			},
		})
		if !d.Accepted {
			return fmt.Errorf("%s rejected: %s", name, d.Reason)
		}
		fmt.Printf("admitted %-12s external window grants r = %v\n", name, d.UpdatePeriod)
	}

	// The runway bound: images of acceleration and lift may never drift
	// more than 60ms apart. Admission converts this into period bounds
	// on both update tasks (Theorem 6) and re-checks schedulability.
	constraint := rtpb.InterObjectConstraint{I: "acceleration", J: "lift", Delta: 60 * time.Millisecond}
	d, err := cluster.Primary.RegisterInterObject(constraint)
	if err != nil {
		return fmt.Errorf("inter-object admission: %w", err)
	}
	fmt.Printf("inter-object constraint δ_ij=%v admitted: %v\n", constraint.Delta, d.Accepted)
	rI, _ := cluster.Primary.UpdatePeriod("acceleration")
	rJ, _ := cluster.Primary.UpdatePeriod("lift")
	fmt.Printf("update periods tightened to r_accel=%v, r_lift=%v (≤ δ_ij)\n", rI, rJ)

	// Watch the pair at both sites.
	monitor := rtpb.NewMonitor()
	monitor.TrackInterObject("primary", constraint)
	monitor.TrackInterObject("backup", constraint)
	cluster.Primary.OnClientDone = func(name string, _ time.Duration) {
		now := cluster.Clock.Now()
		monitor.RecordUpdate("primary", name, now, now)
	}
	cluster.Backup.OnApply = func(_ uint32, name string, _ uint32, _ uint64, version, at time.Time) {
		monitor.RecordUpdate("backup", name, version, at)
	}

	// Take-off roll: acceleration climbs, then lift follows.
	accel := cluster.WriteEvery("acceleration", 20*time.Millisecond, func(i int) []byte {
		return []byte{byte(min(i, 250))}
	})
	lift := cluster.WriteEvery("lift", 20*time.Millisecond, func(i int) []byte {
		if i < 100 {
			return []byte{0}
		}
		return []byte{byte(min(i-100, 250))}
	})
	cluster.RunFor(15 * time.Second)
	accel.Stop()
	lift.Stop()
	monitor.FinishAt(cluster.Clock.Now())

	for _, site := range []string{"primary", "backup"} {
		r, _ := monitor.InterObjectReport(site, "acceleration", "lift")
		fmt.Printf("%-8s |T_lift − T_accel| max=%v over %d checks, bound=%v, violations=%d\n",
			site, r.MaxDistance, r.Checks, r.Delta, r.Violations)
		if !r.Consistent() {
			return fmt.Errorf("inter-object consistency violated at %s", site)
		}
	}
	fmt.Println("inter-object temporal consistency held at both replicas")
	return nil
}
