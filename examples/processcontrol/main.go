// Process control: a plant with many sensors pushing at an RTPB service
// over a lossy network — admission control in action.
//
// The example offers more sensors than the primary's CPU can serve at the
// requested consistency windows. Admission control accepts what is
// schedulable, rejects the rest with a QoS renegotiation hint (a larger
// δ^B the service could accept), and the run then demonstrates that the
// admitted set stays temporally consistent despite 5% message loss,
// thanks to the slack built into the update schedule and backup-initiated
// retransmission.
//
//	go run ./examples/processcontrol
package main

import (
	"fmt"
	"log"
	"time"

	"rtpb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := rtpb.NewSimCluster(rtpb.SimClusterConfig{
		Seed: 11,
		Link: rtpb.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond, LossProb: 0.05},
	})
	if err != nil {
		return err
	}

	// Offer 60 sensors with a tight 30ms replication window each.
	const offered = 60
	admitted := make([]string, 0, offered)
	rejected := 0
	var lastHint time.Duration
	for i := 0; i < offered; i++ {
		name := fmt.Sprintf("sensor-%02d", i)
		d := cluster.Register(rtpb.ObjectSpec{
			Name:         name,
			Size:         64,
			UpdatePeriod: 25 * time.Millisecond,
			Constraint: rtpb.ExternalConstraint{
				DeltaP: 30 * time.Millisecond,
				DeltaB: 60 * time.Millisecond,
			},
		})
		if d.Accepted {
			admitted = append(admitted, name)
		} else {
			rejected++
			if d.SuggestedDeltaB > 0 {
				lastHint = d.SuggestedDeltaB
			}
		}
	}
	fmt.Printf("offered %d sensors: admitted %d, rejected %d (CPU utilization %.1f%%)\n",
		offered, len(admitted), rejected, 100*cluster.Primary.Utilization())
	if lastHint > 0 {
		fmt.Printf("rejection feedback: the service could accept δB ≥ %v instead\n", lastHint)
	}

	// Verify external consistency for every admitted sensor at the
	// backup, under loss.
	monitor := rtpb.NewMonitor()
	for _, name := range admitted {
		monitor.TrackExternal("backup", name, 60*time.Millisecond+30*time.Millisecond)
	}
	retransmits := 0
	cluster.Primary.OnRetransmitRequest = func(uint32) { retransmits++ }
	cluster.Backup.OnApply = func(_ uint32, name string, _ uint32, _ uint64, version, at time.Time) {
		monitor.RecordUpdate("backup", name, version, at)
	}

	writers := make([]interface{ Stop() }, 0, len(admitted))
	for i, name := range admitted {
		reading := byte(i)
		writers = append(writers, cluster.WriteEvery(name, 25*time.Millisecond, func(k int) []byte {
			return []byte{reading, byte(k)}
		}))
	}
	cluster.RunFor(20 * time.Second)
	for _, w := range writers {
		w.Stop()
	}
	monitor.FinishAt(cluster.Clock.Now())

	var worst time.Duration
	violated := 0
	for _, name := range admitted {
		r, _ := monitor.ExternalReport("backup", name)
		if r.MaxStaleness > worst {
			worst = r.MaxStaleness
		}
		if !r.Consistent() {
			violated++
		}
	}
	st := cluster.Net.Stats()
	fmt.Printf("20s of plant operation at 5%% loss: %d datagrams sent, %d lost, %d retransmission requests\n",
		st.Sent, st.DroppedLoss, retransmits)
	fmt.Printf("worst backup staleness across %d sensors: %v (bound %v); sensors out of bound: %d\n",
		len(admitted), worst, 90*time.Millisecond, violated)
	return nil
}
