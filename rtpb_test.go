package rtpb_test

import (
	"testing"
	"time"

	"rtpb"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func demoSpec(name string) rtpb.ObjectSpec {
	return rtpb.ObjectSpec{
		Name:         name,
		Size:         32,
		UpdatePeriod: ms(40),
		Constraint:   rtpb.ExternalConstraint{DeltaP: ms(50), DeltaB: ms(200)},
	}
}

func TestSimClusterQuickstartFlow(t *testing.T) {
	c, err := rtpb.NewSimCluster(rtpb.SimClusterConfig{
		Seed: 1,
		Link: rtpb.LinkParams{Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Register(demoSpec("sensor")); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	w := c.WriteEvery("sensor", ms(40), func(i int) []byte { return []byte{byte(i)} })
	c.RunFor(time.Second)
	w.Stop()
	if _, _, ok := c.Backup.Value("sensor"); !ok {
		t.Fatal("backup missing replicated value")
	}
}

func TestSimClusterRejectsBadLink(t *testing.T) {
	if _, err := rtpb.NewSimCluster(rtpb.SimClusterConfig{
		Link: rtpb.LinkParams{LossProb: 2},
	}); err == nil {
		t.Fatal("accepted loss probability 2")
	}
}

func TestSimClusterCrashAndPartitionControls(t *testing.T) {
	c, err := rtpb.NewSimCluster(rtpb.SimClusterConfig{
		Seed: 2,
		Link: rtpb.LinkParams{Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Register(demoSpec("x")); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	w := c.WriteEvery("x", ms(40), func(i int) []byte { return []byte{byte(i)} })
	c.RunFor(500 * time.Millisecond)

	// Partition: replication pauses but the primary keeps serving.
	c.Partition()
	_, verBefore, _ := c.Backup.Value("x")
	c.RunFor(500 * time.Millisecond)
	_, verAfter, _ := c.Backup.Value("x")
	if !verAfter.Equal(verBefore) {
		t.Fatal("backup advanced across a partition")
	}
	c.Heal()
	c.RunFor(500 * time.Millisecond)
	_, verHealed, _ := c.Backup.Value("x")
	if !verHealed.After(verAfter) {
		t.Fatal("backup did not catch up after heal")
	}
	w.Stop()

	c.CrashPrimary()
	if c.Primary.Running() {
		t.Fatal("primary running after crash")
	}
	c.CrashBackup()
	if c.Backup.Running() {
		t.Fatal("backup running after crash")
	}
}

func TestSimClusterAddHostAndWriteEveryTo(t *testing.T) {
	c, err := rtpb.NewSimCluster(rtpb.SimClusterConfig{
		Seed: 4,
		Link: rtpb.LinkParams{Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Register(demoSpec("x")); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	// Attach an extra backup host through the facade and replicate to it.
	port, err := c.AddHost("extra")
	if err != nil {
		t.Fatal(err)
	}
	extra, err := rtpb.NewBackup(rtpb.Config{
		Clock: c.Clock, Port: port, Peer: "primary:7000", Ell: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Primary.AddPeer("extra:7000"); err != nil {
		t.Fatal(err)
	}
	w := c.WriteEveryTo(c.Primary, "x", 40*time.Millisecond, func(i int) []byte {
		return []byte{byte(i)}
	})
	c.RunFor(500 * time.Millisecond)
	w.Stop()
	if _, _, ok := extra.Value("x"); !ok {
		t.Fatal("facade-attached backup did not replicate")
	}
	// Duplicate host names are rejected.
	if _, err := c.AddHost("extra"); err == nil {
		t.Fatal("duplicate AddHost succeeded")
	}
}

func TestAnalysisHelpers(t *testing.T) {
	if got := rtpb.MaxPrimaryPeriod(ms(50), ms(10)); got != ms(40) {
		t.Fatalf("MaxPrimaryPeriod = %v", got)
	}
	c := rtpb.ExternalConstraint{DeltaP: ms(50), DeltaB: ms(200)}
	if got := rtpb.MaxBackupPeriod(c, ms(10)); got != ms(140) {
		t.Fatalf("MaxBackupPeriod = %v", got)
	}
}

func TestFailoverThroughPublicAPI(t *testing.T) {
	c, err := rtpb.NewSimCluster(rtpb.SimClusterConfig{
		Seed: 3,
		Link: rtpb.LinkParams{Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ns := rtpb.NewNameService()
	if err := ns.Set("svc", "primary:7000", 1); err != nil {
		t.Fatal(err)
	}
	if d := c.Register(demoSpec("state")); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	c.Primary.ClientWrite("state", []byte("critical"), nil)
	c.RunFor(500 * time.Millisecond)

	var promoted *rtpb.Primary
	det, err := rtpb.NewDetector(c.Clock, rtpb.DefaultDetectorConfig(), c.Backup.SendPing, func() {
		p, perr := rtpb.Promote(c.Backup, rtpb.PromoteOptions{
			Service:  "svc",
			SelfAddr: "backup:7000",
			Names:    ns,
		})
		if perr != nil {
			t.Fatalf("promote: %v", perr)
		}
		promoted = p
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Backup.OnPingAck = det.OnAck
	det.Start()
	c.RunFor(200 * time.Millisecond)

	c.CrashPrimary()
	c.RunFor(time.Second)
	if promoted == nil {
		t.Fatal("no promotion after primary crash")
	}
	if v, _, ok := promoted.Value("state"); !ok || string(v) != "critical" {
		t.Fatalf("promoted primary state = %q ok=%v", v, ok)
	}
	addr, _, _ := ns.Lookup("svc")
	if addr != "backup:7000" {
		t.Fatalf("name service points at %v", addr)
	}
}
