// Command rtpbd runs one RTPB replica — primary or backup — over real UDP
// sockets, with the identical protocol stack the simulation uses. The
// primary additionally exposes the line-oriented control interface of
// internal/ctl for client registrations and writes (the stand-in for the
// paper's Mach IPC API); drive it with cmd/rtpbctl.
//
// A two-host (or two-terminal) deployment:
//
//	rtpbd -role backup  -listen 127.0.0.1:7001 -peer 127.0.0.1:7000
//	rtpbd -role primary -listen 127.0.0.1:7000 -peer 127.0.0.1:7001 -ctl 127.0.0.1:7777
//	rtpbctl -addr 127.0.0.1:7777 register alt 64 40ms 50ms 200ms
//	rtpbctl -addr 127.0.0.1:7777 write alt "9000ft"
//
// -peer may be repeated on the primary to broadcast updates to several
// backups (the admission controller charges one transmission per peer):
//
//	rtpbd -role backup  -listen 127.0.0.1:7001 -peer 127.0.0.1:7000
//	rtpbd -role backup  -listen 127.0.0.1:7002 -peer 127.0.0.1:7000
//	rtpbd -role primary -listen 127.0.0.1:7000 \
//	    -peer 127.0.0.1:7001 -peer 127.0.0.1:7002 -ctl 127.0.0.1:7777
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rtpb"
	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/ctl"
	"rtpb/internal/failover"
	"rtpb/internal/netsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("rtpbd: ", err)
	}
}

// peerList accumulates repeated -peer flags.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty peer address")
	}
	*p = append(*p, v)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("rtpbd", flag.ContinueOnError)
	role := fs.String("role", "", "replica role: primary or backup (required)")
	listen := fs.String("listen", "127.0.0.1:7000", "UDP address to listen on")
	var peers peerList
	fs.Var(&peers, "peer", "peer replica's UDP address (required; repeatable on the primary)")
	ctlAddr := fs.String("ctl", "127.0.0.1:7777", "control listener address (primary only)")
	ell := fs.Duration("ell", 5*time.Millisecond, "communication delay bound ℓ")
	mode := fs.String("mode", "normal", "update scheduling: normal or compressed")
	noAdmission := fs.Bool("no-admission", false, "disable admission control (experiments only)")
	heartbeat := fs.Bool("heartbeat", true, "run the heartbeat failure detector")
	mtu := fs.Int("mtu", 0, "fragment updates larger than this (0 = no fragmentation layer)")
	verbose := fs.Bool("v", false, "log protocol events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *role != "primary" && *role != "backup" {
		return fmt.Errorf("-role must be primary or backup")
	}
	if len(peers) == 0 {
		return fmt.Errorf("-peer is required")
	}
	if *role == "backup" && len(peers) > 1 {
		return fmt.Errorf("-peer may be given only once with -role backup (a backup has one primary)")
	}
	scheduling := rtpb.ScheduleNormal
	switch *mode {
	case "normal":
	case "compressed":
		scheduling = rtpb.ScheduleCompressed
	default:
		return fmt.Errorf("-mode must be normal or compressed")
	}

	clk := clock.NewReal()
	defer clk.Stop()
	transport, err := netsim.NewUDP(clk, *listen)
	if err != nil {
		return err
	}
	defer transport.Close()
	var port *rtpb.PortProtocol
	if *mtu > 0 {
		port, err = rtpb.NewStackMTU(transport, clk, *mtu)
	} else {
		port, err = rtpb.NewStack(transport)
	}
	if err != nil {
		return err
	}
	// The peer flag names the peer's UDP socket; the RTPB protocol itself
	// is demultiplexed on the x-kernel port protocol's well-known port, so
	// the full participant address is "<ip:udpport>:<rtpbport>". A backup
	// binds a session to its one primary (Peer); a primary broadcasts to
	// every listed backup (Peers).
	cfg := core.Config{
		Clock:                   clk,
		Port:                    port,
		Ell:                     *ell,
		Scheduling:              scheduling,
		DisableAdmissionControl: *noAdmission,
	}
	for _, p := range peers {
		cfg.Peers = append(cfg.Peers, rtpb.Addr(fmt.Sprintf("%s:%d", p, rtpb.RTPBPort)))
	}
	if *role == "backup" {
		cfg.Peer, cfg.Peers = cfg.Peers[0], nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	switch *role {
	case "primary":
		return runPrimary(clk, cfg, *ctlAddr, *heartbeat, *verbose, sig, transport.LocalAddr())
	default:
		return runBackup(clk, cfg, *heartbeat, *verbose, sig, transport.LocalAddr())
	}
}

func runPrimary(clk *clock.RealClock, cfg core.Config, ctlAddr string, heartbeat, verbose bool, sig chan os.Signal, local string) error {
	errCh := make(chan error, 1)
	var primary *core.Primary
	var ctlSrv *ctl.Server
	clk.Post(func() {
		p, err := core.NewPrimary(cfg)
		if err != nil {
			errCh <- err
			return
		}
		primary = p
		if verbose {
			p.OnSend = func(_ uint32, name string, seq uint64, _ time.Time) {
				log.Printf("send update %s seq=%d", name, seq)
			}
			p.OnRetransmitRequest = func(id uint32) {
				log.Printf("retransmit request for object %d", id)
			}
		}
		if heartbeat {
			var det *failover.Detector
			det, err = failover.NewDetector(clk, failover.DefaultDetectorConfig(), p.SendPing, func() {
				log.Printf("backup declared DEAD; update events cancelled, probing for recovery")
				p.SetBackupAlive(false)
				// Keep probing so a restarted backup is re-integrated
				// automatically.
				clk.Schedule(2*time.Second, func() {
					det.Reset()
					det.Start()
				})
			})
			if err != nil {
				errCh <- err
				return
			}
			p.OnPingAck = func(seq uint64) {
				if !p.BackupAlive() {
					log.Printf("backup responding again; resuming with state transfer")
					p.SetBackupAlive(true)
				}
				det.OnAck(seq)
			}
			det.Start()
		}
		errCh <- nil
	})
	if err := <-errCh; err != nil {
		return err
	}
	srv, err := ctl.NewServer(clk, primary, ctlAddr)
	if err != nil {
		return err
	}
	ctlSrv = srv
	defer ctlSrv.Close()
	log.Printf("primary up: rtpb on udp %s, control on tcp %s, peers %v", local, ctlSrv.Addr(), cfg.Peers)
	<-sig
	log.Printf("shutting down")
	done := make(chan struct{})
	clk.Post(func() { primary.Stop(); close(done) })
	<-done
	return nil
}

func runBackup(clk *clock.RealClock, cfg core.Config, heartbeat, verbose bool, sig chan os.Signal, local string) error {
	errCh := make(chan error, 1)
	var backup *core.Backup
	clk.Post(func() {
		b, err := core.NewBackup(cfg)
		if err != nil {
			errCh <- err
			return
		}
		backup = b
		if verbose {
			b.OnApply = func(_ uint32, name string, _ uint32, seq uint64, version, _ time.Time) {
				log.Printf("apply %s seq=%d version=%s", name, seq, version.Format(time.RFC3339Nano))
			}
			b.OnGap = func(id uint32, have, got uint64) {
				log.Printf("gap on object %d: have seq %d, got %d; requesting retransmit", id, have, got)
			}
		}
		if heartbeat {
			var det *failover.Detector
			det, err = failover.NewDetector(clk, failover.DefaultDetectorConfig(), b.SendPing, func() {
				log.Printf("PRIMARY DECLARED DEAD — a full deployment would promote now " +
					"(see examples/failover for the takeover); probing for recovery")
				clk.Schedule(2*time.Second, func() {
					det.Reset()
					det.Start()
				})
			})
			if err != nil {
				errCh <- err
				return
			}
			b.OnPingAck = det.OnAck
			det.Start()
		}
		errCh <- nil
	})
	if err := <-errCh; err != nil {
		return err
	}
	log.Printf("backup up: rtpb on udp %s, peer %s", local, cfg.Peer)
	<-sig
	log.Printf("shutting down")
	done := make(chan struct{})
	clk.Post(func() { backup.Stop(); close(done) })
	<-done
	return nil
}
