// Command rtpbd runs one RTPB replica — primary or backup — over real UDP
// sockets, with the identical protocol stack the simulation uses. Both
// roles run the same role-based replica state machine; -role only picks
// the starting role. Each replica can expose the line-oriented control
// interface of internal/ctl (the stand-in for the paper's Mach IPC API);
// drive it with cmd/rtpbctl. On the primary the control socket serves
// registrations and writes; on a backup it answers STATUS/READ (and,
// after an in-place takeover, everything else).
//
// With -takeover, a backup whose failure detector declares the primary
// dead promotes itself in place (Section 4.4): the same process flips to
// the primary role under a bumped epoch without copying state, and
// rtpbctl's status verb reports the transition.
//
// With -data <dir>, the replica keeps an asynchronous write-ahead log
// plus epoch snapshots under dir and recovers from it on restart: a
// primary resumes its object set under a fenced epoch, and a backup
// seeds its table from the local durable tail before joining, so
// anti-entropy streams only the gap (disk-fast rejoin). Inspect the
// store with rtpbctl logstat / snapshot.
//
// With -gateway <addr>, a primary also runs the client-facing front tier
// of internal/gateway on a second control listener: sessions subscribe
// to named groups and receive each bound object's staleness certificate
// — value, admitted δ_B, last-update age — every broadcast tick, with
// freshest-image-wins coalescing for slow consumers and admission-aware
// session shedding when the replica's governor degrades. Drive it with
// rtpbctl bind / sub / sessions / groups:
//
//	rtpbd -role primary -listen 127.0.0.1:7000 -peer 127.0.0.1:7001 \
//	    -ctl 127.0.0.1:7777 -gateway 127.0.0.1:7778
//	rtpbctl -addr 127.0.0.1:7778 bind cockpit alt speed
//	rtpbctl -addr 127.0.0.1:7778 sub cockpit   # streams EVENT frames
//
// A two-host (or two-terminal) deployment:
//
//	rtpbd -role backup  -listen 127.0.0.1:7001 -peer 127.0.0.1:7000
//	rtpbd -role primary -listen 127.0.0.1:7000 -peer 127.0.0.1:7001 -ctl 127.0.0.1:7777
//	rtpbctl -addr 127.0.0.1:7777 register alt 64 40ms 50ms 200ms
//	rtpbctl -addr 127.0.0.1:7777 write alt "9000ft"
//
// -peer may be repeated on the primary to broadcast updates to several
// backups (the admission controller charges one transmission per peer):
//
//	rtpbd -role backup  -listen 127.0.0.1:7001 -peer 127.0.0.1:7000
//	rtpbd -role backup  -listen 127.0.0.1:7002 -peer 127.0.0.1:7000
//	rtpbd -role primary -listen 127.0.0.1:7000 \
//	    -peer 127.0.0.1:7001 -peer 127.0.0.1:7002 -ctl 127.0.0.1:7777
//
// With -observe <upstream>, the process runs as a read-only observer
// subscribed to the upstream's update stream — a primary, or another
// observer (chained fan-out). The observer attaches itself through the
// chunked anti-entropy join, serves READ certificates (with chain-
// accumulated θ and depth) on its control socket, relays the stream to
// downstream observers that subscribe to it, and is never promoted or
// counted in any quorum:
//
//	rtpbd -observe 127.0.0.1:7000 -listen 127.0.0.1:7010 -ctl 127.0.0.1:7779
//	rtpbd -observe 127.0.0.1:7010 -listen 127.0.0.1:7011   # chained hop
//	rtpbctl -addr 127.0.0.1:7779 read alt                  # age=… theta=… depth=…
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rtpb"
	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/ctl"
	"rtpb/internal/durable"
	"rtpb/internal/failover"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("rtpbd: ", err)
	}
}

// peerList accumulates repeated -peer flags.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty peer address")
	}
	*p = append(*p, v)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("rtpbd", flag.ContinueOnError)
	role := fs.String("role", "", "replica role: primary or backup (required unless -observe)")
	observe := fs.String("observe", "", "run as a read-only observer subscribed to this upstream UDP address (a primary or another observer); replaces -role/-peer")
	listen := fs.String("listen", "127.0.0.1:7000", "UDP address to listen on")
	var peers peerList
	fs.Var(&peers, "peer", "peer replica's UDP address (required; repeatable on the primary)")
	ctlAddr := fs.String("ctl", "", `control listener address; default 127.0.0.1:7777 on the primary, disabled on a backup ("off" disables explicitly)`)
	ell := fs.Duration("ell", 5*time.Millisecond, "communication delay bound ℓ")
	mode := fs.String("mode", "normal", "update scheduling: normal or compressed")
	noAdmission := fs.Bool("no-admission", false, "disable admission control (experiments only)")
	heartbeat := fs.Bool("heartbeat", true, "run the heartbeat failure detector")
	takeover := fs.Bool("takeover", false, "backup only: promote in place when the primary is declared dead")
	mtu := fs.Int("mtu", 0, "fragment updates larger than this (0 = no fragmentation layer)")
	gwAddr := fs.String("gateway", "", "primary only: client gateway listener address (sessions, groups, broadcast certificate streaming); disabled when empty")
	gwPeriod := fs.Duration("gateway.period", 50*time.Millisecond, "gateway broadcast tick period")
	dataDir := fs.String("data", "", "durable store directory (created if missing): async WAL + epoch snapshots; on restart the replica recovers from it — a primary resumes under a fenced epoch, a backup rejoins streaming only the gap")
	verbose := fs.Bool("v", false, "log protocol events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *observe != "" {
		if *role != "" {
			return fmt.Errorf("-observe and -role are mutually exclusive")
		}
		if len(peers) > 0 {
			return fmt.Errorf("-observe names the upstream; -peer does not apply")
		}
		if *takeover {
			return fmt.Errorf("-takeover does not apply to an observer (observers are never promoted)")
		}
		peers = peerList{*observe}
	} else if *role != "primary" && *role != "backup" {
		return fmt.Errorf("-role must be primary or backup (or use -observe <upstream>)")
	}
	if len(peers) == 0 {
		return fmt.Errorf("-peer is required")
	}
	if *role == "backup" && len(peers) > 1 {
		return fmt.Errorf("-peer may be given only once with -role backup (a backup has one primary)")
	}
	if *takeover && *role != "backup" {
		return fmt.Errorf("-takeover applies only to -role backup")
	}
	if *gwAddr != "" && *role != "primary" {
		return fmt.Errorf("-gateway applies only to -role primary")
	}
	switch *ctlAddr {
	case "":
		if *role == "primary" {
			*ctlAddr = "127.0.0.1:7777"
		}
	case "off":
		*ctlAddr = ""
	}
	scheduling := rtpb.ScheduleNormal
	switch *mode {
	case "normal":
	case "compressed":
		scheduling = rtpb.ScheduleCompressed
	default:
		return fmt.Errorf("-mode must be normal or compressed")
	}

	clk := clock.NewReal()
	defer clk.Stop()
	transport, err := netsim.NewUDP(clk, *listen)
	if err != nil {
		return err
	}
	defer transport.Close()
	var port *rtpb.PortProtocol
	if *mtu > 0 {
		port, err = rtpb.NewStackMTU(transport, clk, *mtu)
	} else {
		port, err = rtpb.NewStack(transport)
	}
	if err != nil {
		return err
	}
	// The peer flag names the peer's UDP socket; the RTPB protocol itself
	// is demultiplexed on the x-kernel port protocol's well-known port, so
	// the full participant address is "<ip:udpport>:<rtpbport>". A backup
	// binds a session to its one primary (Peer); a primary broadcasts to
	// every listed backup (Peers).
	cfg := core.Config{
		Clock:                   clk,
		Port:                    port,
		Ell:                     *ell,
		Scheduling:              scheduling,
		DisableAdmissionControl: *noAdmission,
	}
	for _, p := range peers {
		cfg.Peers = append(cfg.Peers, rtpb.Addr(fmt.Sprintf("%s:%d", p, rtpb.RTPBPort)))
	}
	if *role == "backup" || *observe != "" {
		cfg.Peer, cfg.Peers = cfg.Peers[0], nil
	}

	// -data turns on the durable store: recover whatever a previous run
	// left behind (a missing or empty directory recovers an empty image),
	// then open the log for this run. Recovery never blocks on
	// corruption — a torn tail just shortens what RestoreDurable seeds.
	var recovered *durable.State
	if *dataDir != "" {
		st, rs, err := durable.Recover(*dataDir)
		if err != nil {
			return err
		}
		if rs.SnapshotUsed || rs.RecordsReplayed > 0 {
			stopped := rs.Stopped
			if stopped == "" {
				stopped = "clean"
			}
			log.Printf("recovered %d object(s) at epoch %d from %s (snapshot=%v, %d record(s) over %d segment(s), tail %s)",
				len(st.Objects), st.Epoch, *dataDir, rs.SnapshotUsed,
				rs.RecordsReplayed, rs.SegmentsReplayed, stopped)
		}
		dlog, err := durable.Open(durable.Config{Dir: *dataDir})
		if err != nil {
			return err
		}
		defer dlog.Close()
		cfg.Durable = dlog
		if len(st.Objects) > 0 || st.Epoch > 0 {
			recovered = st
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	startRole := core.RoleBackup
	switch {
	case *observe != "":
		startRole = core.RoleObserver
	case *role == "primary":
		startRole = core.RolePrimary
	}
	return runReplica(clk, cfg, startRole, *ctlAddr, *gwAddr, *gwPeriod, *heartbeat, *takeover, *verbose, sig, transport.LocalAddr(), recovered)
}

// runReplica drives one replica of either role: build it, wire the
// verbose taps and the role-appropriate failure detector, and serve the
// control socket until a signal arrives. Promotion does not restart the
// process — the same replica flips roles in place.
func runReplica(clk *clock.RealClock, cfg core.Config, role core.Role, ctlAddr, gwAddr string, gwPeriod time.Duration, heartbeat, takeover, verbose bool, sig chan os.Signal, local string, recovered *durable.State) error {
	errCh := make(chan error, 1)
	var rep *core.Replica
	var gw *rtpb.Gateway
	clk.Post(func() {
		r, err := core.NewReplica(cfg, role)
		if err != nil {
			errCh <- err
			return
		}
		rep = r
		if gwAddr != "" {
			gw, err = rtpb.NewGateway(rtpb.GatewayConfig{
				Clock:           clk,
				Backend:         rtpb.ReplicaBackend{Primary: r},
				BroadcastPeriod: gwPeriod,
				OnEvent: func(format string, args ...any) {
					log.Printf(format, args...)
				},
			})
			if err != nil {
				errCh <- err
				return
			}
		}
		if recovered != nil {
			if role == core.RolePrimary {
				n := resumePrimary(r, recovered)
				log.Printf("resumed as primary under fenced epoch %d with %d restored object value(s)",
					r.Epoch(), n)
			} else if n := r.RestoreDurable(recovered); n > 0 {
				log.Printf("disk-fast rejoin: %d object value(s) seeded from the local durable tail; anti-entropy streams only the gap", n)
			}
		}
		if verbose {
			r.OnSend = func(_ uint32, name string, seq uint64, _ time.Time) {
				log.Printf("send update %s seq=%d", name, seq)
			}
			r.OnRetransmitRequest = func(id uint32) {
				log.Printf("retransmit request for object %d", id)
			}
			r.OnApply = func(_ uint32, name string, _ uint32, seq uint64, version, _ time.Time) {
				log.Printf("apply %s seq=%d version=%s", name, seq, version.Format(time.RFC3339Nano))
			}
			r.OnGap = func(id uint32, have, got uint64) {
				log.Printf("gap on object %d: have seq %d, got %d; requesting retransmit", id, have, got)
			}
		}
		if role == core.RoleObserver {
			// An observer drives its own attach: re-send the join request
			// until the anti-entropy exchange completes, and heartbeat the
			// upstream to solicit its chain-position advertisement (depth,
			// accumulated θ) so READ certificates compound honestly. No
			// failure detector: an observer never takes over, and a dead
			// upstream simply lets its certificates age out of bound.
			clock.NewPeriodic(clk, 0, 500*time.Millisecond, func() {
				if !r.Joined() {
					r.Join()
				}
			})
			clock.NewPeriodic(clk, 250*time.Millisecond, 500*time.Millisecond, func() { r.SendPing() })
		} else if heartbeat {
			if role == core.RolePrimary {
				err = wirePrimaryDetector(clk, r)
			} else {
				err = wireBackupDetector(clk, r, takeover)
			}
			if err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	})
	if err := <-errCh; err != nil {
		return err
	}
	peers := fmt.Sprintf("%v", cfg.Peers)
	if cfg.Peer != "" {
		peers = string(cfg.Peer)
	}
	if ctlAddr != "" {
		srv, err := ctl.NewServer(clk, rep, ctlAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		log.Printf("%s up: rtpb on udp %s, control on tcp %s, peers %s",
			rep.Role(), local, srv.Addr(), peers)
	} else {
		log.Printf("%s up: rtpb on udp %s, peers %s", rep.Role(), local, peers)
	}
	if gw != nil {
		gsrv, err := ctl.NewGatewayServer(clk, gw, gwAddr)
		if err != nil {
			return err
		}
		defer gsrv.Close()
		log.Printf("gateway up: sessions on tcp %s, broadcast every %v", gsrv.Addr(), gwPeriod)
	}
	<-sig
	log.Printf("shutting down")
	done := make(chan struct{})
	clk.Post(func() {
		if gw != nil {
			gw.Close()
		}
		rep.Stop()
		close(done)
	})
	<-done
	return nil
}

// resumePrimary rebuilds a restarted primary from its recovered durable
// image: specs re-enter through Register — in recovered-ID order, so IDs
// survive the power cycle and admission accounting is rebuilt — values
// are seeded with their recovered versions, and the serving epoch is
// fenced one above everything witnessed on disk, so any straggler
// traffic from the previous incarnation is rejected.
func resumePrimary(p *core.Primary, st *durable.State) int {
	restored := 0
	for i := range st.Objects {
		d := &st.Objects[i]
		if d.Name == "" {
			continue
		}
		dec := p.Register(core.ObjectSpec{
			Name:         d.Name,
			Size:         int(d.Size),
			UpdatePeriod: time.Duration(d.Period),
			Constraint: temporal.ExternalConstraint{
				DeltaP: time.Duration(d.DeltaP),
				DeltaB: time.Duration(d.DeltaB),
			},
			Critical: d.Critical,
		})
		if !dec.Accepted {
			log.Printf("recovered object %q no longer admissible: %s", d.Name, dec.Reason)
			continue
		}
		if d.HasData {
			if err := p.SeedObject(d.Name, d.Value, time.Unix(0, d.Version)); err == nil {
				restored++
			}
		}
	}
	p.SetEpoch(st.Epoch + 1)
	p.NoteDiskRestore(restored)
	return restored
}

// wirePrimaryDetector watches the backup: on its death, update events to
// it are cancelled and the detector keeps probing so a restarted backup
// is re-integrated automatically.
func wirePrimaryDetector(clk *clock.RealClock, p *core.Primary) error {
	var det *failover.Detector
	det, err := failover.NewDetector(clk, failover.DefaultDetectorConfig(), p.SendPing, func() {
		log.Printf("backup declared DEAD; update events cancelled, probing for recovery")
		p.SetBackupAlive(false)
		clk.Schedule(2*time.Second, func() {
			det.Reset()
			det.Start()
		})
	})
	if err != nil {
		return err
	}
	p.OnPingAck = func(seq uint64) {
		if !p.BackupAlive() {
			log.Printf("backup responding again; resuming with state transfer")
			p.SetBackupAlive(true)
		}
		det.OnAck(seq)
	}
	det.Start()
	return nil
}

// wireBackupDetector watches the primary. Without -takeover it only logs
// the verdict and keeps probing; with -takeover it promotes the replica
// in place and leaves the new primary awaiting recruits (rtpbctl
// recruit re-attaches a restarted peer).
func wireBackupDetector(clk *clock.RealClock, b *core.Backup, takeover bool) error {
	var det *failover.Detector
	det, err := failover.NewDetector(clk, failover.DefaultDetectorConfig(), b.SendPing, func() {
		if !takeover {
			log.Printf("PRIMARY DECLARED DEAD — run with -takeover to promote in place; probing for recovery")
			clk.Schedule(2*time.Second, func() {
				det.Reset()
				det.Start()
			})
			return
		}
		if _, err := failover.Promote(b, failover.PromoteOptions{Service: "rtpbd"}); err != nil {
			log.Printf("takeover failed: %v", err)
			return
		}
		log.Printf("PRIMARY DECLARED DEAD — promoted in place: role=%s epoch=%d transitions=%d",
			b.Role(), b.Epoch(), b.Transitions())
	})
	if err != nil {
		return err
	}
	b.OnPingAck = det.OnAck
	det.Start()
	return nil
}
