package main

import (
	"strings"
	"testing"
)

func TestRunValidatesFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing role", []string{"-peer", "x:1"}, "-role"},
		{"bad role", []string{"-role", "observer", "-peer", "x:1"}, "-role"},
		{"missing peer", []string{"-role", "primary"}, "-peer"},
		{"empty peer", []string{"-role", "primary", "-peer", ""}, "peer"},
		{"backup multi peer", []string{"-role", "backup", "-peer", "x:1", "-peer", "y:1"}, "-peer"},
		{"bad mode", []string{"-role", "primary", "-peer", "x:1", "-mode", "turbo"}, "-mode"},
		{"takeover on primary", []string{"-role", "primary", "-peer", "x:1", "-takeover"}, "-takeover"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestRunRejectsUnparseableFlags(t *testing.T) {
	if err := run([]string{"-ell", "soon"}); err == nil {
		t.Fatal("bad duration accepted")
	}
}
