// Command rtpbctl drives a running rtpbd primary through its control
// interface: register objects, declare inter-object constraints, write
// and read values, and query status.
//
//	rtpbctl -addr 127.0.0.1:7777 register alt 64 40ms 50ms 200ms
//	rtpbctl -addr 127.0.0.1:7777 relate accel lift 60ms
//	rtpbctl -addr 127.0.0.1:7777 write alt "9000 ft"
//	rtpbctl -addr 127.0.0.1:7777 read alt
//	rtpbctl -addr 127.0.0.1:7777 status
//	rtpbctl -addr 127.0.0.1:7777 repair               # peer repair-cycle state
//	rtpbctl -addr 127.0.0.1:7777 observers           # observer tier and chain position
//	rtpbctl -addr 127.0.0.1:7777 recruit 10.0.0.9:7000
//	rtpbctl -addr 127.0.0.1:7777 logstat             # durable store inventory
//	rtpbctl -addr 127.0.0.1:7777 snapshot            # force a durable snapshot
//	rtpbctl -addr 127.0.0.1:7777 clock               # clock-sync estimate and θ
//	rtpbctl -addr 127.0.0.1:7777 bench alt 40ms 5s   # periodic writes
//
// Against a sharded cluster's control endpoint (internal/ctl.ShardServer)
// the same register/write/read verbs route transparently, and two
// cluster-level queries become available:
//
//	rtpbctl -addr 127.0.0.1:7777 shards              # per-shard status table
//	rtpbctl -addr 127.0.0.1:7777 route alt           # which shard serves alt
//
// Against a gateway endpoint (internal/ctl.GatewayServer, rtpbd
// -gateway) write/read/register work the same, and the session/group
// surface appears:
//
//	rtpbctl -addr 127.0.0.1:7878 bind cockpit alt speed  # group's objects
//	rtpbctl -addr 127.0.0.1:7878 sub cockpit             # stream frames
//	rtpbctl -addr 127.0.0.1:7878 groups
//	rtpbctl -addr 127.0.0.1:7878 sessions
package main

import (
	"encoding/base64"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rtpb/internal/ctl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rtpbctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rtpbctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7777", "primary's control address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: rtpbctl [-addr host:port] <register|relate|write|read|status|repair|observers|recruit|logstat|snapshot|clock|bench> args...")
	}

	// Validate the subcommand before touching the network.
	sub := strings.ToLower(rest[0])
	arity := map[string]struct {
		n     int
		usage string
	}{
		"register":  {6, "register <name> <size> <period> <deltaP> <deltaB>"},
		"relate":    {4, "relate <nameI> <nameJ> <deltaIJ>"},
		"write":     {3, "write <name> <value>"},
		"read":      {2, "read <name>"},
		"status":    {1, "status"},
		"repair":    {1, "repair"},
		"observers": {1, "observers"},
		"recruit":   {2, "recruit <addr>"},
		"logstat":   {1, "logstat"},
		"snapshot":  {1, "snapshot"},
		"clock":     {1, "clock"},
		"bench":     {4, "bench <name> <period> <duration>"},
		"shards":    {1, "shards"},
		"route":     {2, "route <object>"},
		"sub":       {2, "sub <group>"},
		"groups":    {1, "groups"},
		"sessions":  {1, "sessions"},
		"bind":      {-1, "bind <group> <object> [<object>...]"},
	}
	want, known := arity[sub]
	if !known {
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
	if want.n < 0 {
		if len(rest) < 3 {
			return fmt.Errorf("usage: %s", want.usage)
		}
	} else if len(rest) != want.n {
		return fmt.Errorf("usage: %s", want.usage)
	}

	c, err := ctl.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()

	switch sub {
	case "register":
		return doPrint(c, "REGISTER "+strings.Join(rest[1:], " "))
	case "relate":
		return doPrint(c, "RELATE "+strings.Join(rest[1:], " "))
	case "write":
		return doPrint(c, "WRITE "+rest[1]+" "+base64.StdEncoding.EncodeToString([]byte(rest[2])))
	case "read":
		reply, err := c.Do("READ " + rest[1])
		if err != nil {
			return err
		}
		return printRead(reply)
	case "status":
		reply, err := c.Do("STATUS")
		if err != nil {
			return err
		}
		return printStatus(reply)
	case "repair":
		return doPrint(c, "REPAIR")
	case "observers":
		reply, err := c.Do("OBSERVERS")
		if err != nil {
			return err
		}
		return printObservers(reply)
	case "recruit":
		return doPrint(c, "RECRUIT "+rest[1])
	case "logstat":
		reply, err := c.Do("LOGSTAT")
		if err != nil {
			return err
		}
		return printLogstat(reply)
	case "snapshot":
		return doPrint(c, "SNAPSHOT")
	case "clock":
		return doPrint(c, "CLOCK")
	case "shards":
		reply, err := c.Do("SHARDS")
		if err != nil {
			return err
		}
		return printShards(reply)
	case "route":
		return doPrint(c, "ROUTE "+rest[1])
	case "sub":
		return subscribe(c, rest[1])
	case "groups":
		return doPrint(c, "GROUPS")
	case "sessions":
		return doPrint(c, "SESSIONS")
	case "bind":
		return doPrint(c, "BIND "+strings.Join(rest[1:], " "))
	default: // bench
		return bench(c, rest[1], rest[2], rest[3])
	}
}

// subscribe joins a gateway group and streams its broadcast frames (one
// certified object image per line) until the connection closes.
func subscribe(c *ctl.Client, group string) error {
	reply, err := c.Do("SUB " + group)
	if err != nil {
		return err
	}
	fmt.Println(reply)
	if !strings.HasPrefix(reply, "OK") {
		os.Exit(2)
	}
	for {
		line, err := c.ReadLine()
		if err != nil {
			return nil // connection closed: subscription over
		}
		fields := strings.Fields(line)
		// EVENT <group> <object> <seq> <b64> <version> age=... delta=... mode=...
		if len(fields) >= 6 && fields[0] == "EVENT" {
			if value, err := base64.StdEncoding.DecodeString(fields[4]); err == nil {
				fmt.Printf("%s %s seq=%s %q version=%s %s\n",
					fields[1], fields[2], fields[3], value, fields[5],
					strings.Join(fields[6:], " "))
				continue
			}
		}
		fmt.Println(line)
	}
}

func doPrint(c *ctl.Client, line string) error {
	reply, err := c.Do(line)
	if err != nil {
		return err
	}
	fmt.Println(reply)
	if strings.HasPrefix(reply, "ERR") || strings.HasPrefix(reply, "REJECT") {
		os.Exit(2)
	}
	return nil
}

// printStatus renders the STATUS reply
//
//	OK role=<primary|backup> objects=<n> utilization=<u> epoch=<e>
//	  backupAlive=<bool> transitions=<n>
//
// as an aligned one-row table. Replies from an older daemon (no role=
// field) are printed verbatim.
func printStatus(reply string) error {
	if !strings.HasPrefix(reply, "OK ") {
		fmt.Println(reply)
		os.Exit(2)
	}
	kv := map[string]string{}
	for _, f := range strings.Fields(reply)[1:] {
		if k, v, ok := strings.Cut(f, "="); ok {
			kv[k] = v
		}
	}
	if kv["role"] == "" {
		fmt.Println(reply)
		return nil
	}
	fmt.Printf("%-8s %-8s %-12s %-6s %-7s %s\n",
		"ROLE", "OBJECTS", "UTILIZATION", "EPOCH", "BACKUP", "TRANSITIONS")
	fmt.Printf("%-8s %-8s %-12s %-6s %-7s %s\n",
		kv["role"], kv["objects"], kv["utilization"], kv["epoch"],
		kv["backupAlive"], kv["transitions"])
	return nil
}

// printShards renders the SHARDS reply
//
//	OK shards=<k> [| <i> primary=<addr> epoch=<e> objects=<n>
//	  utilization=<u> backupAlive=<bool> promotions=<p>]...
//
// as an aligned table, one shard per row.
func printShards(reply string) error {
	if !strings.HasPrefix(reply, "OK ") {
		fmt.Println(reply)
		os.Exit(2)
	}
	segments := strings.Split(reply, " | ")
	fmt.Printf("%-6s %-24s %-6s %-8s %-12s %-7s %s\n",
		"SHARD", "PRIMARY", "EPOCH", "OBJECTS", "UTILIZATION", "BACKUP", "PROMOTIONS")
	for _, seg := range segments[1:] {
		fields := strings.Fields(seg)
		if len(fields) == 0 {
			continue
		}
		kv := map[string]string{}
		for _, f := range fields[1:] {
			if k, v, ok := strings.Cut(f, "="); ok {
				kv[k] = v
			}
		}
		fmt.Printf("%-6s %-24s %-6s %-8s %-12s %-7s %s\n",
			fields[0], kv["primary"], kv["epoch"], kv["objects"],
			kv["utilization"], kv["backupAlive"], kv["promotions"])
	}
	return nil
}

// printLogstat renders the LOGSTAT reply
//
//	OK segments=<n> prunable_segments=<n> prunable_epochs=<n> pruned=<n>
//	  snapshots=<n> last_snapshot_epoch=<e> epoch=<e> appended=<n>
//	  dropped=<n> source=<disk|network|none> restored=<n>
//
// as a two-row aligned table: the store's segment/snapshot inventory and
// how this replica's state was recovered. "PRUNABLE" is segments(epochs)
// already covered by the newest snapshot — what the next prune drops.
func printLogstat(reply string) error {
	if !strings.HasPrefix(reply, "OK ") {
		fmt.Println(reply)
		os.Exit(2)
	}
	kv := map[string]string{}
	for _, f := range strings.Fields(reply)[1:] {
		if k, v, ok := strings.Cut(f, "="); ok {
			kv[k] = v
		}
	}
	if kv["segments"] == "" {
		fmt.Println(reply)
		return nil
	}
	fmt.Printf("%-9s %-12s %-7s %-10s %-10s %-6s %-9s %-8s %-8s %s\n",
		"SEGMENTS", "PRUNABLE", "PRUNED", "SNAPSHOTS", "SNAPEPOCH", "EPOCH",
		"APPENDED", "DROPPED", "SOURCE", "RESTORED")
	fmt.Printf("%-9s %-12s %-7s %-10s %-10s %-6s %-9s %-8s %-8s %s\n",
		kv["segments"],
		fmt.Sprintf("%s(%sep)", kv["prunable_segments"], kv["prunable_epochs"]),
		kv["pruned"], kv["snapshots"], kv["last_snapshot_epoch"], kv["epoch"],
		kv["appended"], kv["dropped"], kv["source"], kv["restored"])
	return nil
}

// printObservers renders the OBSERVERS reply
//
//	OK observers=<n> depth=<d> theta=<dur> [| <addr> alive=<bool>
//	  syncing=<bool>]...
//
// as a summary line plus one row per attached observer peer.
func printObservers(reply string) error {
	if !strings.HasPrefix(reply, "OK ") {
		fmt.Println(reply)
		os.Exit(2)
	}
	segments := strings.Split(reply, " | ")
	kv := map[string]string{}
	for _, f := range strings.Fields(segments[0])[1:] {
		if k, v, ok := strings.Cut(f, "="); ok {
			kv[k] = v
		}
	}
	fmt.Printf("observers=%s chain depth=%s theta=%s\n",
		kv["observers"], kv["depth"], kv["theta"])
	if len(segments) > 1 {
		fmt.Printf("%-24s %-7s %s\n", "OBSERVER", "ALIVE", "SYNCING")
		for _, seg := range segments[1:] {
			fields := strings.Fields(seg)
			if len(fields) == 0 {
				continue
			}
			skv := map[string]string{}
			for _, f := range fields[1:] {
				if k, v, ok := strings.Cut(f, "="); ok {
					skv[k] = v
				}
			}
			fmt.Printf("%-24s %-7s %s\n", fields[0], skv["alive"], skv["syncing"])
		}
	}
	return nil
}

// printRead renders a READ reply, including the staleness-certificate
// fields (age=<dur> delta=<dur> mode=<m>) newer daemons append; older
// three-field replies print without them.
func printRead(reply string) error {
	fields := strings.Fields(reply)
	if len(fields) >= 3 && fields[0] == "OK" {
		value, err := base64.StdEncoding.DecodeString(fields[1])
		if err == nil {
			fmt.Printf("%q version=%s", value, fields[2])
			if len(fields) > 3 {
				fmt.Printf(" %s", strings.Join(fields[3:], " "))
			}
			fmt.Println()
			return nil
		}
	}
	fmt.Println(reply)
	return nil
}

// bench issues periodic writes for a while and reports the response-time
// distribution seen by this client.
func bench(c *ctl.Client, name, periodStr, durStr string) error {
	period, err := time.ParseDuration(periodStr)
	if err != nil {
		return err
	}
	dur, err := time.ParseDuration(durStr)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(dur)
	var latencies []time.Duration
	payload := []byte(fmt.Sprintf("bench-%d", time.Now().UnixNano()))
	for i := 0; time.Now().Before(deadline); i++ {
		start := time.Now()
		reply, err := c.Write(name, payload)
		if err != nil {
			return err
		}
		if !strings.HasPrefix(reply, "OK") {
			return fmt.Errorf("write %d failed: %s", i, reply)
		}
		latencies = append(latencies, time.Since(start))
		time.Sleep(time.Until(start.Add(period)))
	}
	if len(latencies) == 0 {
		return fmt.Errorf("no writes completed")
	}
	var total, worst time.Duration
	for _, l := range latencies {
		total += l
		if l > worst {
			worst = l
		}
	}
	fmt.Printf("writes=%d mean=%v max=%v\n",
		len(latencies), total/time.Duration(len(latencies)), worst)
	return nil
}
