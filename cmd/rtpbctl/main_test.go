package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no subcommand", nil, "usage"},
		{"unknown subcommand", []string{"-addr", "127.0.0.1:1", "frobnicate"}, "unknown subcommand"},
		{"register arity", []string{"-addr", "127.0.0.1:1", "register", "x"}, "usage: register"},
		{"write arity", []string{"-addr", "127.0.0.1:1", "write", "x"}, "usage: write"},
		{"read arity", []string{"-addr", "127.0.0.1:1", "read"}, "usage: read"},
		{"relate arity", []string{"-addr", "127.0.0.1:1", "relate", "a"}, "usage: relate"},
		{"bench arity", []string{"-addr", "127.0.0.1:1", "bench", "x"}, "usage: bench"},
		{"recruit arity", []string{"-addr", "127.0.0.1:1", "recruit"}, "usage: recruit"},
		{"repair arity", []string{"-addr", "127.0.0.1:1", "repair", "x"}, "usage: repair"},
		{"shards arity", []string{"-addr", "127.0.0.1:1", "shards", "x"}, "usage: shards"},
		{"route arity", []string{"-addr", "127.0.0.1:1", "route"}, "usage: route"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatal("expected an error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestRunDialFailure(t *testing.T) {
	// Port 1 on localhost is almost certainly closed; Dial must fail
	// fast and surface the error.
	err := run([]string{"-addr", "127.0.0.1:1", "status"})
	if err == nil {
		t.Fatal("expected dial error")
	}
}

// stubServer answers the cluster-level control verbs with canned replies,
// standing in for a ShardServer (which runs on a virtual clock and so
// can't be driven over real TCP from a test).
func stubServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					switch line := sc.Text(); {
					case line == "SHARDS":
						fmt.Fprintln(conn, "OK shards=2"+
							" | 0 primary=shard0-p:7000 epoch=1 objects=2 utilization=0.4800 backupAlive=true promotions=0"+
							" | 1 primary=shard1-b:7000 epoch=2 objects=1 utilization=0.2400 backupAlive=false promotions=1")
					case strings.HasPrefix(line, "ROUTE "):
						fmt.Fprintln(conn, "OK shard 1 primary shard1-b:7000 epoch 2")
					case line == "STATUS":
						fmt.Fprintln(conn, "OK role=primary objects=2 utilization=0.4800 epoch=3 backupAlive=true transitions=2")
					default:
						fmt.Fprintln(conn, "ERR unknown command")
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	ferr := f()
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	r.Close()
	if ferr != nil {
		t.Fatalf("run: %v (output %q)", ferr, out)
	}
	return string(out)
}

func TestShardsTableRoundTrip(t *testing.T) {
	addr := stubServer(t)
	out := capture(t, func() error { return run([]string{"-addr", addr, "shards"}) })
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 shard rows, got %d lines:\n%s", len(lines), out)
	}
	for _, want := range []string{"SHARD", "PRIMARY", "EPOCH", "UTILIZATION", "PROMOTIONS"} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("header missing %q: %q", want, lines[0])
		}
	}
	row0 := strings.Fields(lines[1])
	if want := []string{"0", "shard0-p:7000", "1", "2", "0.4800", "true", "0"}; !equalSlices(row0, want) {
		t.Fatalf("row 0 = %v, want %v", row0, want)
	}
	row1 := strings.Fields(lines[2])
	if want := []string{"1", "shard1-b:7000", "2", "1", "0.2400", "false", "1"}; !equalSlices(row1, want) {
		t.Fatalf("row 1 = %v, want %v", row1, want)
	}
}

func TestStatusTableRoundTrip(t *testing.T) {
	addr := stubServer(t)
	out := capture(t, func() error { return run([]string{"-addr", addr, "status"}) })
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines:\n%s", len(lines), out)
	}
	for _, want := range []string{"ROLE", "OBJECTS", "UTILIZATION", "EPOCH", "BACKUP", "TRANSITIONS"} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("header missing %q: %q", want, lines[0])
		}
	}
	row := strings.Fields(lines[1])
	if want := []string{"primary", "2", "0.4800", "3", "true", "2"}; !equalSlices(row, want) {
		t.Fatalf("status row = %v, want %v", row, want)
	}
}

func TestRouteRoundTrip(t *testing.T) {
	addr := stubServer(t)
	out := capture(t, func() error { return run([]string{"-addr", addr, "route", "alt"}) })
	if want := "OK shard 1 primary shard1-b:7000 epoch 2\n"; out != want {
		t.Fatalf("route output %q, want %q", out, want)
	}
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
