package main

import (
	"strings"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no subcommand", nil, "usage"},
		{"unknown subcommand", []string{"-addr", "127.0.0.1:1", "frobnicate"}, "unknown subcommand"},
		{"register arity", []string{"-addr", "127.0.0.1:1", "register", "x"}, "usage: register"},
		{"write arity", []string{"-addr", "127.0.0.1:1", "write", "x"}, "usage: write"},
		{"read arity", []string{"-addr", "127.0.0.1:1", "read"}, "usage: read"},
		{"relate arity", []string{"-addr", "127.0.0.1:1", "relate", "a"}, "usage: relate"},
		{"bench arity", []string{"-addr", "127.0.0.1:1", "bench", "x"}, "usage: bench"},
		{"recruit arity", []string{"-addr", "127.0.0.1:1", "recruit"}, "usage: recruit"},
		{"repair arity", []string{"-addr", "127.0.0.1:1", "repair", "x"}, "usage: repair"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatal("expected an error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestRunDialFailure(t *testing.T) {
	// Port 1 on localhost is almost certainly closed; Dial must fail
	// fast and surface the error.
	err := run([]string{"-addr", "127.0.0.1:1", "status"})
	if err == nil {
		t.Fatal("expected dial error")
	}
}
