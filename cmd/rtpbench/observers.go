package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/shard"
	"rtpb/internal/temporal"
)

// observerPoint is one (observers, chain depth) cell of the read-offload
// sweep: aggregate certificate-read throughput against the size and
// shape of a single shard's observer tier.
type observerPoint struct {
	// Observers is the tier size; ChainDepth arranges it into fan-out
	// chains of that length (1 = every observer directly on the primary).
	Observers  int `json:"observers"`
	ChainDepth int `json:"chain_depth"`
	// ReadsPerSec is the served certificate-read rate under the sweep's
	// fixed offered load and per-replica service capacity; Scaling is the
	// ratio against the primary-only baseline cell.
	ReadsPerSec float64 `json:"reads_per_sec"`
	Scaling     float64 `json:"scaling_vs_primary_only"`
	// ObserverShare is the fraction of served reads the observer tier
	// absorbed — the primary-offload claim, directly.
	ObserverShare float64 `json:"observer_share"`
	// P99AgeMs and MaxAgeMs summarize the served certificates' ages; the
	// acceptance bar keeps p99 within the admitted δ_B.
	P99AgeMs float64 `json:"p99_age_ms"`
	MaxAgeMs float64 `json:"max_age_ms"`
	// MaxServedDepth is the deepest chain position that served a read —
	// it must never exceed the configured chain depth.
	MaxServedDepth int `json:"max_served_depth"`
	// HonestyViolations counts served certificates that understated the
	// version stamp's true fabric-clock staleness (Age+θ below it) or
	// claimed freshness beyond δ_B. The bar is zero in every cell: more
	// observers may mean staler reads, never dishonest ones.
	HonestyViolations int `json:"honesty_violations"`
}

// observersSweep measures certificate-read scaling against observer
// count {0, 1, 4, 16} × chain depth {1, 2, 3} on a one-shard cluster
// under a steady write workload. The read model is a fixed offered load
// of readsOffered reads per tick, round-robined over the objects, each
// served by the next replica (primary or fresh observer) with service
// budget left in the tick — readCap reads per replica per tick, the
// same crude service-rate model for every cell, so the sweep isolates
// how far the tier stretches aggregate capacity. A read is only ever
// served off an observer whose certificate proves its bound
// (cert.Fresh), mirroring Shard.ObserverCertificate; everything else
// falls to the primary or is dropped. Every served certificate is
// audited against ground truth: version stamps originate on the
// primary's clock and the fabric shares one clock, so now−Version is
// the true staleness and Age+θ must never undercut it.
func observersSweep(seed int64, duration time.Duration) ([]observerPoint, error) {
	const (
		warmup       = 500 * time.Millisecond
		tick         = time.Millisecond
		readsOffered = 64 // offered reads per tick (64k/s)
		readCap      = 4  // per-replica service capacity per tick (4k/s)
		objects      = 4
		deltaB       = 120 * time.Millisecond
	)
	type cell struct{ observers, depth int }
	var cells []cell
	for _, n := range []int{0, 1, 4, 16} {
		depths := []int{1, 2, 3}
		if n == 0 {
			depths = []int{1} // no tier: depth is inert, one baseline cell
		}
		for _, d := range depths {
			cells = append(cells, cell{n, d})
		}
	}

	var points []observerPoint
	baseline := 0.0
	for _, cl := range cells {
		c, err := shard.NewCluster(shard.Config{
			Shards:             1,
			Seed:               seed,
			Observers:          cl.observers,
			ObserverChainDepth: cl.depth,
		})
		if err != nil {
			return nil, err
		}
		var names []string
		for i := 0; i < objects; i++ {
			name := fmt.Sprintf("obj%d", i)
			spec := core.ObjectSpec{
				Name:         name,
				Size:         64,
				UpdatePeriod: 20 * time.Millisecond,
				Constraint: temporal.ExternalConstraint{
					DeltaP: 20 * time.Millisecond,
					DeltaB: deltaB,
				},
			}
			if _, _, err := c.Place(spec); err != nil {
				c.Stop()
				return nil, fmt.Errorf("place %s: %w", name, err)
			}
			c.WriteEvery(name, spec.UpdatePeriod)
			names = append(names, name)
		}

		sh := c.Shard(0)
		var (
			recording      bool
			served         uint64
			observerServed uint64
			ages           []time.Duration
			maxServedDepth int
			honesty        int
		)
		reader := clock.NewPeriodic(c.Clock(), 0, tick, func() {
			if !recording {
				return
			}
			// One service budget per replica per tick; index 0 is the
			// primary, 1..N the chain-ordered observer tier.
			tier := sh.Observers()
			budget := make([]int, 1+len(tier))
			for i := range budget {
				budget[i] = readCap
			}
			now := c.Clock().Now()
			cursor := 0
			for r := 0; r < readsOffered; r++ {
				name := names[r%len(names)]
				for probe := 0; probe < len(budget); probe++ {
					s := (cursor + probe) % len(budget)
					if budget[s] == 0 {
						continue
					}
					var cert core.Certificate
					var ok bool
					if s == 0 {
						cert, ok = sh.Primary().Certificate(name)
					} else if obs := tier[s-1]; obs != nil && obs.Running() {
						cert, ok = obs.Certificate(name)
						ok = ok && cert.Fresh()
					}
					if !ok {
						continue
					}
					budget[s]--
					served++
					ages = append(ages, cert.Age)
					truth := now.Sub(cert.Version)
					if cert.Age+cert.Theta < truth {
						honesty++ // the certificate launders staleness
					}
					if truth > deltaB && cert.Fresh() {
						honesty++ // claims fresh beyond the admitted bound
					}
					if s > 0 {
						observerServed++
						if cert.Depth > maxServedDepth {
							maxServedDepth = cert.Depth
						}
					}
					cursor = (s + 1) % len(budget)
					break
				}
			}
		})
		c.RunFor(warmup)
		recording = true
		c.RunFor(duration)
		recording = false
		reader.Stop()
		c.StopWriters()
		c.Stop()

		p := observerPoint{
			Observers:         cl.observers,
			ChainDepth:        cl.depth,
			ReadsPerSec:       float64(served) / duration.Seconds(),
			P99AgeMs:          msOf(percentile(ages, 0.99)),
			MaxAgeMs:          msOf(percentile(ages, 1.0)),
			MaxServedDepth:    maxServedDepth,
			HonestyViolations: honesty,
		}
		if served > 0 {
			p.ObserverShare = float64(observerServed) / float64(served)
		}
		if cl.observers == 0 && cl.depth == 1 {
			baseline = p.ReadsPerSec
		}
		if baseline > 0 {
			p.Scaling = p.ReadsPerSec / baseline
		}
		points = append(points, p)
	}
	return points, nil
}

// runObserversCmd implements the "observers" subcommand: print the
// read-offload sweep, and with -json merge it into the benchmark report.
func runObserversCmd(args []string) error {
	fs := flag.NewFlagSet("rtpbench observers", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed for loss and jitter")
	duration := fs.Duration("duration", 2*time.Second, "virtual measurement interval per cell")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "merge the sweep into the JSON benchmark report")
	jsonPath := fs.String("json.out", "BENCH_rtpb.json", "path of the -json report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	points, err := observersSweep(*seed, *duration)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("observers,chain_depth,reads_per_sec,scaling_vs_primary_only,observer_share,p99_age_ms,max_age_ms,max_served_depth,honesty_violations")
		for _, p := range points {
			fmt.Printf("%d,%d,%.1f,%.2f,%.3f,%.3f,%.3f,%d,%d\n",
				p.Observers, p.ChainDepth, p.ReadsPerSec, p.Scaling,
				p.ObserverShare, p.P99AgeMs, p.MaxAgeMs, p.MaxServedDepth, p.HonestyViolations)
		}
	} else {
		fmt.Println("observer-tier read offload vs tier size and chain depth (1 shard, 4 objects)")
		fmt.Printf("%-10s %-7s %-12s %-9s %-10s %-11s %-11s %-11s %s\n",
			"observers", "depth", "reads/s", "scaling", "obs share", "p99 age ms", "max age ms", "max depth", "violations")
		for _, p := range points {
			fmt.Printf("%-10d %-7d %-12.1f %-9.2f %-10.3f %-11.3f %-11.3f %-11d %d\n",
				p.Observers, p.ChainDepth, p.ReadsPerSec, p.Scaling,
				p.ObserverShare, p.P99AgeMs, p.MaxAgeMs, p.MaxServedDepth, p.HonestyViolations)
		}
	}
	if !*jsonOut {
		return nil
	}
	var report benchReport
	if data, err := os.ReadFile(*jsonPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonPath, err)
		}
	}
	if report.Seed == 0 {
		report.Seed = *seed
	}
	report.Observers = points
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d observer cells, %v virtual each)\n", *jsonPath, len(points), *duration)
	return nil
}
