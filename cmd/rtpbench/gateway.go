package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/gateway"
	"rtpb/internal/shard"
	"rtpb/internal/temporal"
)

// gatewayPoint is one (sessions, groups) cell of the front-tier fan-out
// sweep.
type gatewayPoint struct {
	// Sessions and Groups shape the subscriber population: Sessions
	// concurrent consumers spread round-robin over Groups groups of two
	// objects each.
	Sessions int `json:"sessions"`
	Groups   int `json:"groups"`
	// Broadcasts counts fan-out ticks inside the measurement interval.
	Broadcasts uint64 `json:"broadcasts"`
	// FanOutPerSec is delivered certificate frames per virtual second —
	// the gateway's aggregate broadcast throughput.
	FanOutPerSec float64 `json:"fanout_msgs_per_sec"`
	// P99AgeMs and MaxAgeMs summarize the delivered staleness
	// certificates: the age field of the frame at delivery time.
	P99AgeMs float64 `json:"p99_age_ms"`
	MaxAgeMs float64 `json:"max_age_ms"`
	// BoundViolations counts delivered frames whose certificate age
	// exceeded its admitted mode-effective bound — the acceptance bar is
	// zero on non-shed shards.
	BoundViolations int `json:"bound_violations"`
	// CertReadsPerTick is the fan-in the replica pair actually saw per
	// broadcast tick. The contract is one read per object per tick, so
	// this must track the object count, not the session count.
	CertReadsPerTick float64 `json:"cert_reads_per_tick"`
}

// ageCollector accumulates delivered-certificate ages once armed; the
// warmup interval before arming is discarded.
type ageCollector struct {
	recording  bool
	ages       []time.Duration
	violations int
}

func (c *ageCollector) record(cert core.Certificate) {
	if !c.recording {
		return
	}
	c.ages = append(c.ages, cert.Age)
	if cert.Age > cert.Bound {
		c.violations++
	}
}

// benchSink is the per-session delivery target: every session shares one
// collector, so the sweep sees the full fan-out stream.
type benchSink struct{ col *ageCollector }

func (s benchSink) Deliver(f gateway.Frame) error {
	s.col.record(f.Cert)
	return nil
}

func (s benchSink) Close() {}

// gatewaySweep measures front-tier broadcast fan-out against subscriber
// scale: sessions ∈ {100, 1k, 10k} crossed with group counts {1, 8},
// each group bound to two objects under a steady write workload on a
// two-shard cluster. Everything runs on the virtual clock, so each cell
// is a pure function of (seed, duration) — and the fan-in column
// documents the economy claim: 10k subscribers cost the primaries the
// same certificate-read rate as 100.
func gatewaySweep(seed int64, duration time.Duration) ([]gatewayPoint, error) {
	const (
		warmup          = 300 * time.Millisecond
		broadcastPeriod = 50 * time.Millisecond
		objectsPerGroup = 2
	)
	var points []gatewayPoint
	for _, sessions := range []int{100, 1000, 10000} {
		for _, groups := range []int{1, 8} {
			c, err := shard.NewCluster(shard.Config{Shards: 2, Seed: seed})
			if err != nil {
				return nil, err
			}
			gw, err := gateway.New(gateway.Config{
				Clock:           c.Clock(),
				Backend:         gateway.ClusterBackend{Cluster: c},
				BroadcastPeriod: broadcastPeriod,
			})
			if err != nil {
				c.Stop()
				return nil, err
			}
			// Two objects per group, written every update period; the
			// placer spreads them across both shards.
			totalObjects := 0
			for gi := 0; gi < groups; gi++ {
				var objs []string
				for oi := 0; oi < objectsPerGroup; oi++ {
					name := fmt.Sprintf("g%d-obj%d", gi, oi)
					spec := core.ObjectSpec{
						Name:         name,
						Size:         64,
						UpdatePeriod: 20 * time.Millisecond,
						Constraint: temporal.ExternalConstraint{
							DeltaP: 20 * time.Millisecond,
							DeltaB: 120 * time.Millisecond,
						},
					}
					if _, _, err := c.Place(spec); err != nil {
						gw.Close()
						c.Stop()
						return nil, fmt.Errorf("place %s: %w", name, err)
					}
					c.WriteEvery(name, spec.UpdatePeriod)
					objs = append(objs, name)
					totalObjects++
				}
				gw.Bind(fmt.Sprintf("g%d", gi), objs...)
			}
			col := &ageCollector{}
			for i := 0; i < sessions; i++ {
				s, err := gw.Connect(benchSink{col: col})
				if err != nil {
					gw.Close()
					c.Stop()
					return nil, fmt.Errorf("connect session %d: %w", i, err)
				}
				if err := gw.Subscribe(s, fmt.Sprintf("g%d", i%groups)); err != nil {
					gw.Close()
					c.Stop()
					return nil, err
				}
			}
			c.RunFor(warmup)
			startStats := gw.Stats()
			startReads := uint64(0)
			for i := 0; i < c.Shards(); i++ {
				startReads += gw.CertReads(i)
			}
			col.recording = true
			c.RunFor(duration)
			col.recording = false
			endStats := gw.Stats()
			endReads := uint64(0)
			for i := 0; i < c.Shards(); i++ {
				endReads += gw.CertReads(i)
			}
			c.StopWriters()

			ticks := endStats.Broadcasts - startStats.Broadcasts
			delivered := endStats.Delivered - startStats.Delivered
			p := gatewayPoint{
				Sessions:        sessions,
				Groups:          groups,
				Broadcasts:      ticks,
				FanOutPerSec:    float64(delivered) / duration.Seconds(),
				P99AgeMs:        msOf(percentile(col.ages, 0.99)),
				MaxAgeMs:        msOf(percentile(col.ages, 1.0)),
				BoundViolations: col.violations,
			}
			if ticks > 0 {
				p.CertReadsPerTick = float64(endReads-startReads) / float64(ticks)
			}
			// Sanity, not just reporting: the fan-in economy contract is
			// one certificate read per object per tick no matter how many
			// sessions subscribe.
			if ticks > 0 && endReads-startReads > ticks*uint64(totalObjects) {
				gw.Close()
				c.Stop()
				return nil, fmt.Errorf("fan-in leak: %d cert reads over %d ticks for %d objects",
					endReads-startReads, ticks, totalObjects)
			}
			points = append(points, p)
			gw.Close()
			c.Stop()
		}
	}
	return points, nil
}

// percentile returns the q-quantile of a duration sample (q in (0,1];
// 1.0 is the max). The sample is sorted in place.
func percentile(sample []time.Duration, q float64) time.Duration {
	if len(sample) == 0 {
		return 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	idx := int(q*float64(len(sample))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sample) {
		idx = len(sample) - 1
	}
	return sample[idx]
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runGatewayCmd implements the "gateway" subcommand: print the front-tier
// fan-out sweep, and with -json merge it into the benchmark report file.
func runGatewayCmd(args []string) error {
	fs := flag.NewFlagSet("rtpbench gateway", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed for loss and jitter")
	duration := fs.Duration("duration", 2*time.Second, "virtual measurement interval per cell")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "merge the sweep into the JSON benchmark report")
	jsonPath := fs.String("json.out", "BENCH_rtpb.json", "path of the -json report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	points, err := gatewaySweep(*seed, *duration)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("sessions,groups,broadcasts,fanout_msgs_per_sec,p99_age_ms,max_age_ms,bound_violations,cert_reads_per_tick")
		for _, p := range points {
			fmt.Printf("%d,%d,%d,%.1f,%.3f,%.3f,%d,%.1f\n",
				p.Sessions, p.Groups, p.Broadcasts, p.FanOutPerSec,
				p.P99AgeMs, p.MaxAgeMs, p.BoundViolations, p.CertReadsPerTick)
		}
	} else {
		fmt.Println("gateway broadcast fan-out vs subscriber scale (2 shards, 2 objects/group)")
		fmt.Printf("%-9s %-7s %-11s %-14s %-11s %-11s %-11s %s\n",
			"sessions", "groups", "broadcasts", "fanout msg/s", "p99 age ms", "max age ms", "violations", "reads/tick")
		for _, p := range points {
			fmt.Printf("%-9d %-7d %-11d %-14.1f %-11.3f %-11.3f %-11d %.1f\n",
				p.Sessions, p.Groups, p.Broadcasts, p.FanOutPerSec,
				p.P99AgeMs, p.MaxAgeMs, p.BoundViolations, p.CertReadsPerTick)
		}
	}
	if !*jsonOut {
		return nil
	}
	var report benchReport
	if data, err := os.ReadFile(*jsonPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonPath, err)
		}
	}
	if report.Seed == 0 {
		report.Seed = *seed
	}
	report.Gateway = points
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d gateway cells, %v virtual each)\n", *jsonPath, len(points), *duration)
	return nil
}
