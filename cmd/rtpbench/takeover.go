package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/failover"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
	"rtpb/internal/xkernel"
)

// takeoverPoint is one object count in the takeover-latency sweep. Unlike
// every other section of the report it records wall-clock time — the cost
// of the Promote call itself, which runs no virtual time — so its numbers
// vary between hosts and runs. The shape is what matters: the in-place
// promotion does no per-object admission test and no state copy, so the
// latency stays flat as the object count grows.
type takeoverPoint struct {
	// Objects is the size of the replicated object table at takeover.
	Objects int `json:"objects"`
	// PromoteMicros is the best-of-reps wall-clock cost of the Promote
	// call: epoch bump, role flip, timer activation, directory claim.
	PromoteMicros float64 `json:"promote_us"`
	// Epoch is the epoch the successor serves under (2: first takeover).
	Epoch uint32 `json:"epoch"`
}

// benchStack assembles the two-layer protocol graph on one simulated host.
func benchStack(net *netsim.Network, host string) (*xkernel.PortProtocol, *netsim.Endpoint, error) {
	ep, err := net.Endpoint(host)
	if err != nil {
		return nil, nil, err
	}
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(ep)},
	})
	if err != nil {
		return nil, nil, err
	}
	p, _ := g.Protocol("uport")
	return p.(*xkernel.PortProtocol), ep, nil
}

// takeoverOnce replicates n objects to a backup, crashes the primary, and
// times the in-place promotion.
func takeoverOnce(seed int64, n int) (time.Duration, uint32, error) {
	clk := clock.NewSim()
	net := netsim.New(clk, seed)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: time.Millisecond}); err != nil {
		return 0, 0, err
	}
	pPort, pEP, err := benchStack(net, "p")
	if err != nil {
		return 0, 0, err
	}
	bPort, _, err := benchStack(net, "b")
	if err != nil {
		return 0, 0, err
	}
	// Admission control off: the sweep measures takeover against table
	// size, not how many objects one CPU budget schedules.
	p, err := core.NewPrimary(core.Config{
		Clock: clk, Port: pPort, Peer: "b:7000",
		Ell: 2 * time.Millisecond, DisableAdmissionControl: true,
	})
	if err != nil {
		return 0, 0, err
	}
	b, err := core.NewBackup(core.Config{
		Clock: clk, Port: bPort, Peer: "p:7000",
		Ell: 2 * time.Millisecond, DisableAdmissionControl: true,
	})
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < n; i++ {
		spec := core.ObjectSpec{
			Name:         fmt.Sprintf("obj%d", i),
			Size:         32,
			UpdatePeriod: 20 * time.Millisecond,
			Constraint: temporal.ExternalConstraint{
				DeltaP: 20 * time.Millisecond,
				DeltaB: 200 * time.Millisecond,
			},
		}
		if d := p.Register(spec); !d.Accepted {
			return 0, 0, fmt.Errorf("register %q: %s", spec.Name, d.Reason)
		}
		p.ClientWrite(spec.Name, []byte(fmt.Sprintf("v%d", i)), nil)
	}
	clk.RunFor(500 * time.Millisecond)

	pEP.SetDown(true)
	p.Stop()
	ns := failover.NewNameService()
	if err := ns.Set("bench", "p:7000", 1); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	np, err := failover.Promote(b, failover.PromoteOptions{
		Service: "bench", SelfAddr: "b:7000", Names: ns,
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	epoch := np.Epoch()
	np.Stop()
	return elapsed, epoch, nil
}

// takeoverSweep times the in-place promotion at each object count, keeping
// the best of reps runs (the minimum is the least-noise estimate of the
// code path's cost).
func takeoverSweep(seed int64, reps int, counts []int) ([]takeoverPoint, error) {
	var points []takeoverPoint
	for _, n := range counts {
		var best time.Duration
		var epoch uint32
		for rep := 0; rep < reps; rep++ {
			d, e, err := takeoverOnce(seed+int64(rep), n)
			if err != nil {
				return nil, fmt.Errorf("takeover n=%d rep=%d: %w", n, rep, err)
			}
			if rep == 0 || d < best {
				best, epoch = d, e
			}
		}
		points = append(points, takeoverPoint{
			Objects:       n,
			PromoteMicros: float64(best) / float64(time.Microsecond),
			Epoch:         epoch,
		})
	}
	return points, nil
}

// runTakeoverCmd implements the "takeover" subcommand: print the
// takeover-latency-vs-object-count sweep, and with -json merge it into
// the benchmark report file.
func runTakeoverCmd(args []string) error {
	fs := flag.NewFlagSet("rtpbench takeover", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed for the replication phase")
	reps := fs.Int("reps", 5, "runs per object count (best is kept)")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "merge the sweep into the JSON benchmark report")
	jsonPath := fs.String("json.out", "BENCH_rtpb.json", "path of the -json report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	points, err := takeoverSweep(*seed, *reps, []int{1, 16, 64, 256})
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("objects,promote_us,epoch")
		for _, p := range points {
			fmt.Printf("%d,%.1f,%d\n", p.Objects, p.PromoteMicros, p.Epoch)
		}
	} else {
		fmt.Println("takeover latency vs object count (in-place promotion, best of reps)")
		fmt.Printf("%-8s %-11s %s\n", "objects", "promote_us", "epoch")
		for _, p := range points {
			fmt.Printf("%-8d %-11.1f %d\n", p.Objects, p.PromoteMicros, p.Epoch)
		}
	}
	if !*jsonOut {
		return nil
	}
	// Merge into the existing report rather than clobbering the other
	// sweeps; a missing file starts a fresh report.
	var report benchReport
	if data, err := os.ReadFile(*jsonPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonPath, err)
		}
	}
	if report.Seed == 0 {
		report.Seed = *seed
	}
	report.Takeover = points
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d object counts, best of %d)\n", *jsonPath, len(points), *reps)
	return nil
}
