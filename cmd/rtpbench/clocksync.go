package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rtpb/internal/chaos"
	"rtpb/internal/core"
	"rtpb/internal/failover"
	"rtpb/internal/temporal"
)

// clocksyncSkews is the sweep's skew axis: the backup boots with its
// wall clock displaced by this much from the primary's.
var clocksyncSkews = []time.Duration{
	0,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
}

// clocksyncRawViolationSkew is the discrimination gate: at or above this
// skew the uncorrected (sync-off) arm must show provable bound
// violations on the fast object — otherwise the sweep has stopped
// exercising the hazard the correction exists for — while the corrected
// arm must stay at zero at every point ("zero silent violations").
const clocksyncRawViolationSkew = 50 * time.Millisecond

// clocksyncPoint is one row of the skew-tolerance sweep.
type clocksyncPoint struct {
	// SkewMs is the injected backup clock offset.
	SkewMs float64 `json:"skew_ms"`
	// Admitted/Offered chart the admission-control axis: how much of a
	// fixed δB ladder survives when SkewMargin reserves this much skew.
	Admitted int `json:"admitted"`
	Offered  int `json:"offered"`
	// SyncViolationMs is the worst per-object provable violation time
	// with clock-sync correction on (gated at zero at every skew).
	SyncViolationMs float64 `json:"sync_violation_ms"`
	// SyncUnverifiableMs is the corrected arm's gray-band time: staleness
	// within θ of the bound, where the monitor suspends judgement.
	SyncUnverifiableMs float64 `json:"sync_unverifiable_ms"`
	// SyncThetaMs is the estimator's error bound θ at the end of the run.
	SyncThetaMs float64 `json:"sync_theta_ms"`
	// RawViolationMs is the same scenario without correction: the skew
	// lands in the staleness measurement and the fast object's bound is
	// provably (and correctly) charged once the skew eats its slack.
	RawViolationMs float64 `json:"raw_violation_ms"`
}

// clocksyncObjects is the scenario workload: the standard object
// (δB=250ms, slack the sweep's skews never threaten) plus a fast tight
// one (δB=60ms) whose slack a 50ms skew provably consumes — the pair
// that separates "skew corrected" from "skew charged to the protocol".
func clocksyncObjects() []core.ObjectSpec {
	fast := core.ObjectSpec{
		Name:         "gyro",
		Size:         64,
		UpdatePeriod: 10 * time.Millisecond,
		Constraint: temporal.ExternalConstraint{
			DeltaP: 20 * time.Millisecond,
			DeltaB: 60 * time.Millisecond,
		},
	}
	return []core.ObjectSpec{chaos.StandardObject(), fast}
}

// clocksyncScenario builds one sweep arm: the backup boots with its
// clock off by skew (the fault fires at t=0, modelling boot-time
// miscalibration, so the very first sync probe already sees it), and the
// run either corrects stamps through the estimated offset (sync) or
// verifies raw stamps (raw). The sync arm carries the full invariant
// set — bounds held, estimator honest against ground truth — while the
// raw arm only keeps the liveness checks, because charging the skew to
// the protocol is exactly the outcome it measures.
func clocksyncScenario(skew time.Duration, sync bool) chaos.Scenario {
	mode := "raw"
	if sync {
		mode = "sync"
	}
	sc := chaos.Scenario{
		Name: fmt.Sprintf("clocksync-%s-skew-%dms", mode, skew/time.Millisecond),
		Description: fmt.Sprintf(
			"backup boots %v off the primary's clock, correction %s", skew, mode),
		Duration:  3 * time.Second,
		ClockSync: sync,
		Objects:   clocksyncObjects(),
		Detector:  failover.DetectorConfig{Interval: 50 * time.Millisecond, Timeout: 30 * time.Millisecond, MaxMisses: 10},
		Invariants: []chaos.Checker{
			chaos.Converged{}, chaos.NoSplitBrain{},
			chaos.Promotions{Want: 0}, chaos.EpochIs{Want: 1},
			chaos.Progress{MinApplies: 20},
		},
	}
	if skew > 0 {
		sc.Events = []chaos.FaultEvent{
			{At: 0, Fault: chaos.ClockSkew{Node: chaos.BackupNode, Offset: skew}},
		}
	}
	if sync {
		sc.Invariants = append(sc.Invariants,
			chaos.BoundHeld{}, chaos.HonestBounds{Site: chaos.BackupNode})
	}
	return sc
}

// clocksyncLadder is the admission axis' offered set: twelve objects
// whose backup slacks δB−δP step from 10ms to 120ms over a fixed δP, so
// each SkewMargin increment visibly prices the tightest rungs out
// (admission rejects any object whose slack the reserved skew plus ℓ
// consumes).
func clocksyncLadder() []core.ObjectSpec {
	specs := make([]core.ObjectSpec, 0, 12)
	for k := 0; k < 12; k++ {
		specs = append(specs, core.ObjectSpec{
			Name:         fmt.Sprintf("rung-%02d", k),
			Size:         64,
			UpdatePeriod: 40 * time.Millisecond,
			Constraint: temporal.ExternalConstraint{
				DeltaP: 50 * time.Millisecond,
				DeltaB: 60*time.Millisecond + time.Duration(k)*10*time.Millisecond,
			},
		})
	}
	return specs
}

// clocksyncSweep measures skew tolerance on both axes at each point of
// the skew ladder: (a) admitted capacity when admission control reserves
// the skew as SkewMargin, and (b) the backup's verified-bound accounting
// for a cluster whose backup actually boots with that skew, with
// clock-sync correction on and off. The sweep fails if the corrected arm
// ever shows a provable violation, if the uncorrected arm fails to show
// one at the largest skew (the hazard must remain demonstrable), or if
// reserving more skew ever admits more objects.
func clocksyncSweep(seed int64) ([]clocksyncPoint, error) {
	ladder := clocksyncLadder()
	points := make([]clocksyncPoint, 0, len(clocksyncSkews))
	for _, skew := range clocksyncSkews {
		p := clocksyncPoint{
			SkewMs:  float64(skew.Microseconds()) / 1000,
			Offered: len(ladder),
		}
		for _, d := range core.PlanAdmission(core.Config{
			Ell:        5 * time.Millisecond,
			SkewMargin: skew,
		}, ladder) {
			if d.Accepted {
				p.Admitted++
			}
		}
		for _, sync := range []bool{true, false} {
			sc := clocksyncScenario(skew, sync)
			sc.Seed = seed
			res, err := chaos.Run(sc)
			if err != nil {
				return nil, fmt.Errorf("clocksync sweep %s: %w", sc.Name, err)
			}
			if len(res.Violations) > 0 {
				return nil, fmt.Errorf("clocksync sweep %s seed %d: %d violation(s): %s",
					sc.Name, sc.Seed, len(res.Violations), res.Violations[0])
			}
			ms := float64(res.BoundViolation.Microseconds()) / 1000
			if sync {
				p.SyncViolationMs = ms
				p.SyncUnverifiableMs = float64(res.UnverifiableTime.Microseconds()) / 1000
				p.SyncThetaMs = float64(res.EndTheta.Microseconds()) / 1000
			} else {
				p.RawViolationMs = ms
			}
		}
		if p.SyncViolationMs > 0 {
			return nil, fmt.Errorf(
				"clocksync sweep: corrected arm charged %.1fms of violation at %v skew; offset correction is no longer absorbing the skew",
				p.SyncViolationMs, skew)
		}
		if skew >= clocksyncRawViolationSkew && p.RawViolationMs == 0 {
			return nil, fmt.Errorf(
				"clocksync sweep: uncorrected arm shows no violation at %v skew; the sweep no longer demonstrates the hazard",
				skew)
		}
		if n := len(points); n > 0 && p.Admitted > points[n-1].Admitted {
			return nil, fmt.Errorf(
				"clocksync sweep: admitted capacity rose from %d to %d as SkewMargin grew to %v",
				points[n-1].Admitted, p.Admitted, skew)
		}
		points = append(points, p)
	}
	if points[0].Admitted != len(ladder) {
		return nil, fmt.Errorf("clocksync sweep: only %d/%d ladder objects admitted at zero margin",
			points[0].Admitted, len(ladder))
	}
	return points, nil
}

// runClocksyncCmd implements the "clocksync" subcommand: print the
// skew-tolerance sweep (enforcing the zero-silent-violations gate), and
// with -json merge it into the benchmark report file.
func runClocksyncCmd(args []string) error {
	fs := flag.NewFlagSet("rtpbench clocksync", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed for loss and jitter")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "merge the sweep into the JSON benchmark report")
	jsonPath := fs.String("json.out", "BENCH_rtpb.json", "path of the -json report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	points, err := clocksyncSweep(*seed)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("skew_ms,admitted,offered,sync_violation_ms,sync_unverifiable_ms,sync_theta_ms,raw_violation_ms")
		for _, p := range points {
			fmt.Printf("%.0f,%d,%d,%.3f,%.3f,%.3f,%.3f\n",
				p.SkewMs, p.Admitted, p.Offered, p.SyncViolationMs,
				p.SyncUnverifiableMs, p.SyncThetaMs, p.RawViolationMs)
		}
	} else {
		fmt.Println("clock-skew tolerance: admitted capacity (SkewMargin over a 12-rung δB ladder) and verified bounds (backup booted skewed, correction on/off)")
		fmt.Printf("%-8s %-10s %-11s %-11s %-9s %s\n",
			"skew", "admitted", "sync-viol", "sync-gray", "sync-θ", "raw-viol")
		for _, p := range points {
			fmt.Printf("%-8s %-10s %-11s %-11s %-9s %s\n",
				fmt.Sprintf("%.0fms", p.SkewMs),
				fmt.Sprintf("%d/%d", p.Admitted, p.Offered),
				fmt.Sprintf("%.3fms", p.SyncViolationMs),
				fmt.Sprintf("%.1fms", p.SyncUnverifiableMs),
				fmt.Sprintf("%.2fms", p.SyncThetaMs),
				fmt.Sprintf("%.1fms", p.RawViolationMs))
		}
	}
	if !*jsonOut {
		return nil
	}
	var report benchReport
	if data, err := os.ReadFile(*jsonPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonPath, err)
		}
	}
	if report.Seed == 0 {
		report.Seed = *seed
	}
	report.ClockSync = points
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d clocksync sweep points)\n", *jsonPath, len(points))
	return nil
}
