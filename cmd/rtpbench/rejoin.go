package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rtpb/internal/chaos"
)

// rejoinLosses is the disk-vs-network sweep's loss axis.
var rejoinLosses = []float64{0, 0.05, 0.10, 0.20}

// rejoinSpeedupGate is the floor on disk-mode speedup at or above
// rejoinGateLoss: a restart that replays its local durable tail must
// beat a full over-the-wire anti-entropy transfer by at least this
// factor once the link is meaningfully lossy, or disk-fast rejoin has
// regressed into re-streaming state it already holds.
const (
	rejoinSpeedupGate = 10.0
	rejoinGateLoss    = 0.10
)

// rejoinSweep measures the disk-vs-network rejoin transfer matrix: the
// chaos.RejoinSweep scenario (wide mostly-quiescent state, crashed
// primary returning to a promoted successor) in both modes at each loss
// rate, all on the virtual clock. Disk-mode entries carry the speedup
// over the network entry at the same loss, and the sweep fails if the
// gate is missed. A scenario violation also fails the sweep: a transfer
// time from a run that broke an invariant is not a measurement.
func rejoinSweep(seed int64) ([]rejoinPoint, error) {
	var points []rejoinPoint
	networkMs := make(map[float64]float64)
	for _, loss := range rejoinLosses {
		for _, disk := range []bool{false, true} {
			sc := chaos.RejoinSweep(loss, disk)
			sc.Seed = seed
			res, err := chaos.Run(sc)
			if err != nil {
				return nil, fmt.Errorf("rejoin sweep %s: %w", sc.Name, err)
			}
			if len(res.Violations) > 0 {
				return nil, fmt.Errorf("rejoin sweep %s seed %d: %d violation(s): %s",
					sc.Name, sc.Seed, len(res.Violations), res.Violations[0])
			}
			mode := "network"
			if disk {
				mode = "disk"
			}
			p := rejoinPoint{
				Name:            res.Scenario,
				Loss:            loss,
				Mode:            mode,
				TransferMs:      float64(res.RejoinTransfer.Microseconds()) / 1000,
				CatchUpMs:       float64(res.RejoinCatchUp.Microseconds()) / 1000,
				Promotions:      res.Promotions,
				FinalEpoch:      res.FinalEpoch,
				Violations:      len(res.Violations),
				RestoredObjects: res.RestoredObjects,
			}
			if disk {
				if net := networkMs[loss]; net > 0 && p.TransferMs > 0 {
					p.SpeedupVsNetwork = net / p.TransferMs
				}
				if loss >= rejoinGateLoss && p.SpeedupVsNetwork < rejoinSpeedupGate {
					return nil, fmt.Errorf(
						"rejoin sweep: disk transfer %.1fms is only %.1fx faster than network %.1fms at %.0f%% loss (gate: %.0fx)",
						p.TransferMs, p.SpeedupVsNetwork, networkMs[loss], loss*100, rejoinSpeedupGate)
				}
			} else {
				networkMs[loss] = p.TransferMs
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// runRejoinCmd implements the "rejoin" subcommand: print the
// disk-vs-network rejoin transfer sweep (enforcing the speedup gate),
// and with -json merge it into the benchmark report file alongside the
// full-repair-cycle points.
func runRejoinCmd(args []string) error {
	fs := flag.NewFlagSet("rtpbench rejoin", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed for loss and jitter")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "merge the sweep into the JSON benchmark report")
	jsonPath := fs.String("json.out", "BENCH_rtpb.json", "path of the -json report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	points, err := rejoinSweep(*seed)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("loss,mode,transfer_ms,catch_up_ms,restored_objects,speedup_vs_network")
		for _, p := range points {
			fmt.Printf("%.2f,%s,%.3f,%.1f,%d,%.1f\n",
				p.Loss, p.Mode, p.TransferMs, p.CatchUpMs, p.RestoredObjects, p.SpeedupVsNetwork)
		}
	} else {
		fmt.Println("rejoin transfer: disk-fast restart vs full network anti-entropy (100 objects, 4 hot)")
		fmt.Printf("%-6s %-9s %-12s %-12s %-9s %s\n",
			"loss", "mode", "transfer", "catch-up", "restored", "speedup")
		for _, p := range points {
			speedup := "-"
			if p.SpeedupVsNetwork > 0 {
				speedup = fmt.Sprintf("%.1fx", p.SpeedupVsNetwork)
			}
			fmt.Printf("%-6.2f %-9s %-12s %-12s %-9d %s\n",
				p.Loss, p.Mode,
				fmt.Sprintf("%.3fms", p.TransferMs),
				fmt.Sprintf("%.1fms", p.CatchUpMs),
				p.RestoredObjects, speedup)
		}
	}
	if !*jsonOut {
		return nil
	}
	// Merge into the existing report without clobbering the other sweeps:
	// the full-repair-cycle points (no Mode) stay, the previous
	// disk-vs-network entries are replaced.
	var report benchReport
	if data, err := os.ReadFile(*jsonPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonPath, err)
		}
	}
	if report.Seed == 0 {
		report.Seed = *seed
	}
	kept := report.Rejoin[:0]
	for _, p := range report.Rejoin {
		if p.Mode == "" {
			kept = append(kept, p)
		}
	}
	report.Rejoin = append(kept, points...)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rejoin sweep points)\n", *jsonPath, len(points))
	return nil
}
