// Command rtpbench regenerates the paper's evaluation figures (Section 5)
// on the simulated RTPB deployment and prints each as a data table or CSV.
//
// Usage:
//
//	rtpbench                    # all figures, table output
//	rtpbench -figure 8          # one figure
//	rtpbench -csv               # CSV output
//	rtpbench -duration 30s      # longer measurement interval per point
//	rtpbench -seed 7            # different random seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtpb/internal/experiments"
	"rtpb/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rtpbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rtpbench", flag.ContinueOnError)
	figure := fs.Int("figure", 0, "figure number to regenerate (6-12, 13 = live phase variance, 14 = active-vs-passive comparison); 0 means all")
	seed := fs.Int64("seed", 1, "random seed for loss and jitter")
	duration := fs.Duration("duration", 10*time.Second, "virtual measurement interval per data point")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	plot := fs.Bool("plot", false, "render an ASCII chart under each table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	type gen func(int64, time.Duration) (*trace.Figure, error)
	gens := map[int]gen{
		6:  experiments.Figure6,
		7:  experiments.Figure7,
		8:  experiments.Figure8,
		9:  experiments.Figure9,
		10: experiments.Figure10,
		11: experiments.Figure11,
		12: experiments.Figure12,
		// 13 and 14 are not paper figures: 13 is this reproduction's
		// live phase-variance measurement (Definition 1 observed on the
		// running protocol, against the Inequality 2.1 bound); 14 is the
		// passive-vs-active response-time comparison that quantifies the
		// related-work argument of Section 6.1.
		13: experiments.PhaseVarianceFigure,
		14: experiments.CompareFigure,
	}

	var figures []*trace.Figure
	if *figure == 0 {
		all, err := experiments.Figures(*seed, *duration)
		if err != nil {
			return err
		}
		figures = all
	} else {
		g, ok := gens[*figure]
		if !ok {
			return fmt.Errorf("no such figure %d (want 6-14)", *figure)
		}
		f, err := g(*seed, *duration)
		if err != nil {
			return err
		}
		figures = []*trace.Figure{f}
	}

	for i, f := range figures {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Printf("# %s: %s\n%s", f.Name, f.Title, f.CSV())
		} else {
			fmt.Print(f.Render())
		}
		if *plot {
			fmt.Println()
			fmt.Print(f.Plot(64, 16))
		}
	}
	return nil
}
