// Command rtpbench regenerates the paper's evaluation figures (Section 5)
// on the simulated RTPB deployment and prints each as a data table or CSV,
// and runs the deterministic fault-injection scenarios of internal/chaos.
//
// Usage:
//
//	rtpbench                    # all figures, table output
//	rtpbench -figure 8          # one figure
//	rtpbench -csv               # CSV output
//	rtpbench -duration 30s      # longer measurement interval per point
//	rtpbench -seed 7            # different random seed
//	rtpbench -json              # resilience benchmark matrix -> BENCH_rtpb.json
//
//	rtpbench chaos -list        # list the scenario catalogue
//	rtpbench chaos              # run every quick scenario
//	rtpbench chaos -full        # include the long soak scenarios
//	rtpbench chaos -scenario split-brain-fencing -seed 3 -v
//
//	rtpbench shard              # capacity-vs-shard-count sweep
//	rtpbench shard -json        # merge the sweep into BENCH_rtpb.json
//
//	rtpbench takeover           # in-place promotion latency vs object count
//	rtpbench takeover -json     # merge the sweep into BENCH_rtpb.json
//
//	rtpbench wire               # wire hot-path sweep: objects × batch size
//	rtpbench wire -json         # merge the sweep into BENCH_rtpb.json
//
//	rtpbench rejoin             # disk-vs-network rejoin transfer sweep
//	rtpbench rejoin -json       # merge the sweep into BENCH_rtpb.json
//
//	rtpbench clocksync          # skew tolerance: admitted capacity + verified bounds vs clock skew
//	rtpbench clocksync -json    # merge the sweep into BENCH_rtpb.json
//
//	rtpbench gateway            # front-tier fan-out sweep: sessions × groups
//	rtpbench gateway -json      # merge the sweep into BENCH_rtpb.json
//
//	rtpbench observers          # observer-tier read offload: tier size × chain depth
//	rtpbench observers -json    # merge the sweep into BENCH_rtpb.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtpb/internal/chaos"
	"rtpb/internal/experiments"
	"rtpb/internal/trace"
)

func main() {
	args := os.Args[1:]
	var err error
	if len(args) > 0 && args[0] == "chaos" {
		err = runChaos(args[1:])
	} else if len(args) > 0 && args[0] == "shard" {
		err = runShardCmd(args[1:])
	} else if len(args) > 0 && args[0] == "takeover" {
		err = runTakeoverCmd(args[1:])
	} else if len(args) > 0 && args[0] == "wire" {
		err = runWireCmd(args[1:])
	} else if len(args) > 0 && args[0] == "rejoin" {
		err = runRejoinCmd(args[1:])
	} else if len(args) > 0 && args[0] == "clocksync" {
		err = runClocksyncCmd(args[1:])
	} else if len(args) > 0 && args[0] == "gateway" {
		err = runGatewayCmd(args[1:])
	} else if len(args) > 0 && args[0] == "observers" {
		err = runObserversCmd(args[1:])
	} else {
		err = run(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtpbench:", err)
		os.Exit(1)
	}
}

// runChaos implements the "chaos" subcommand: list or execute the
// fault-injection catalogue and exit non-zero on any invariant violation.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("rtpbench chaos", flag.ContinueOnError)
	scenario := fs.String("scenario", "", "run a single scenario by name (default: the whole catalogue)")
	seed := fs.Int64("seed", 0, "override the scenario's committed seed (0 keeps it)")
	list := fs.Bool("list", false, "list the catalogue and exit")
	verbose := fs.Bool("v", false, "print each scenario's virtual-timestamped event log")
	full := fs.Bool("full", false, "include long soak scenarios in catalogue runs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, sc := range chaos.Catalogue() {
			tag := "quick"
			if sc.Full {
				tag = "full "
			}
			effSeed := sc.Seed
			if effSeed == 0 {
				effSeed = 1
			}
			fmt.Printf("%-26s %s seed=%-3d %s\n", sc.Name, tag, effSeed, sc.Description)
		}
		for _, sc := range chaos.ShardCatalogue() {
			effSeed := sc.Seed
			if effSeed == 0 {
				effSeed = 1
			}
			fmt.Printf("%-26s %s seed=%-3d %s\n", sc.Name, "shard", effSeed, sc.Description)
		}
		for _, sc := range chaos.GatewayCatalogue() {
			effSeed := sc.Seed
			if effSeed == 0 {
				effSeed = 1
			}
			fmt.Printf("%-26s %s seed=%-3d %s\n", sc.Name, "gway ", effSeed, sc.Description)
		}
		return nil
	}

	var scenarios []chaos.Scenario
	var shardScenarios []chaos.ShardScenario
	var gatewayScenarios []chaos.GatewayScenario
	if *scenario != "" {
		if sc, ok := chaos.Find(*scenario); ok {
			scenarios = []chaos.Scenario{sc}
		} else if ssc, ok := chaos.FindShard(*scenario); ok {
			shardScenarios = []chaos.ShardScenario{ssc}
		} else if gsc, ok := chaos.FindGateway(*scenario); ok {
			gatewayScenarios = []chaos.GatewayScenario{gsc}
		} else {
			return fmt.Errorf("no such scenario %q (rtpbench chaos -list)", *scenario)
		}
	} else {
		for _, sc := range chaos.Catalogue() {
			if sc.Full && !*full {
				continue
			}
			scenarios = append(scenarios, sc)
		}
		shardScenarios = chaos.ShardCatalogue()
		gatewayScenarios = chaos.GatewayCatalogue()
	}

	failed, total := 0, 0
	report := func(res *chaos.Result) {
		total++
		status := "PASS"
		if res.Failed() {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %-26s seed=%-3d %6v virtual, %d promotions, epoch %d\n",
			status, res.Scenario, res.Seed, res.Elapsed, res.Promotions, res.FinalEpoch)
		for _, v := range res.Violations {
			fmt.Printf("     violation: %s\n", v)
		}
		if *verbose {
			for _, line := range res.Log {
				fmt.Printf("     %s\n", line)
			}
		}
	}
	for _, sc := range scenarios {
		if *seed != 0 {
			sc.Seed = *seed
		}
		res, err := chaos.Run(sc)
		if err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		report(res)
	}
	for _, sc := range shardScenarios {
		if *seed != 0 {
			sc.Seed = *seed
		}
		res, err := chaos.RunShard(sc)
		if err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		report(res)
	}
	for _, sc := range gatewayScenarios {
		if *seed != 0 {
			sc.Seed = *seed
		}
		res, err := chaos.RunGateway(sc)
		if err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		report(res)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, total)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("rtpbench", flag.ContinueOnError)
	figure := fs.Int("figure", 0, "figure number to regenerate (6-12, 13 = live phase variance, 14 = active-vs-passive comparison); 0 means all")
	seed := fs.Int64("seed", 1, "random seed for loss and jitter")
	duration := fs.Duration("duration", 10*time.Second, "virtual measurement interval per data point")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	plot := fs.Bool("plot", false, "render an ASCII chart under each table")
	jsonOut := fs.Bool("json", false, "run the resilience benchmark matrix and write a JSON report instead of figures")
	jsonPath := fs.String("json.out", "BENCH_rtpb.json", "path for the -json report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut {
		return runBench(*jsonPath, *seed, *duration)
	}

	type gen func(int64, time.Duration) (*trace.Figure, error)
	gens := map[int]gen{
		6:  experiments.Figure6,
		7:  experiments.Figure7,
		8:  experiments.Figure8,
		9:  experiments.Figure9,
		10: experiments.Figure10,
		11: experiments.Figure11,
		12: experiments.Figure12,
		// 13 and 14 are not paper figures: 13 is this reproduction's
		// live phase-variance measurement (Definition 1 observed on the
		// running protocol, against the Inequality 2.1 bound); 14 is the
		// passive-vs-active response-time comparison that quantifies the
		// related-work argument of Section 6.1.
		13: experiments.PhaseVarianceFigure,
		14: experiments.CompareFigure,
	}

	var figures []*trace.Figure
	if *figure == 0 {
		all, err := experiments.Figures(*seed, *duration)
		if err != nil {
			return err
		}
		figures = all
	} else {
		g, ok := gens[*figure]
		if !ok {
			return fmt.Errorf("no such figure %d (want 6-14)", *figure)
		}
		f, err := g(*seed, *duration)
		if err != nil {
			return err
		}
		figures = []*trace.Figure{f}
	}

	for i, f := range figures {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Printf("# %s: %s\n%s", f.Name, f.Title, f.CSV())
		} else {
			fmt.Print(f.Render())
		}
		if *plot {
			fmt.Println()
			fmt.Print(f.Plot(64, 16))
		}
	}
	return nil
}
