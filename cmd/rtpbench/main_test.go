package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFigure(t *testing.T) {
	err := run([]string{"-figure", "99"})
	if err == nil || !strings.Contains(err.Error(), "no such figure") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-duration", "bogus"}); err == nil {
		t.Fatal("bad duration accepted")
	}
}

func TestRunSingleFigureSmokes(t *testing.T) {
	// A tiny virtual interval keeps this fast; output goes to stdout.
	if err := run([]string{"-figure", "13", "-duration", "500ms"}); err != nil {
		t.Fatalf("figure 13: %v", err)
	}
	if err := run([]string{"-figure", "8", "-duration", "250ms", "-csv"}); err != nil {
		t.Fatalf("figure 8 csv: %v", err)
	}
}
