package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFigure(t *testing.T) {
	err := run([]string{"-figure", "99"})
	if err == nil || !strings.Contains(err.Error(), "no such figure") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-duration", "bogus"}); err == nil {
		t.Fatal("bad duration accepted")
	}
}

func TestTakeoverSweepIsInPlace(t *testing.T) {
	// A small sweep exercises the whole measurement path: replicate,
	// crash, time the promotion. Every point must come back from a
	// first takeover (epoch 2) with a positive latency.
	points, err := takeoverSweep(1, 1, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.Epoch != 2 {
			t.Fatalf("n=%d promoted to epoch %d, want 2", p.Objects, p.Epoch)
		}
		if p.PromoteMicros <= 0 {
			t.Fatalf("n=%d promotion cost %v, want > 0", p.Objects, p.PromoteMicros)
		}
	}
}

func TestClocksyncSweepSeparatesArms(t *testing.T) {
	// The sweep's own gates (zero corrected violations, uncorrected
	// violations at the top skew, monotone admission) run inside
	// clocksyncSweep; this pins the shape of what it returns.
	points, err := clocksyncSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(clocksyncSkews) {
		t.Fatalf("got %d points, want %d", len(points), len(clocksyncSkews))
	}
	first, last := points[0], points[len(points)-1]
	if first.Admitted != first.Offered {
		t.Fatalf("zero margin admitted %d/%d, want the full ladder", first.Admitted, first.Offered)
	}
	if last.Admitted >= first.Admitted {
		t.Fatalf("max margin admitted %d, want fewer than the zero-margin %d", last.Admitted, first.Admitted)
	}
	if last.RawViolationMs <= 0 {
		t.Fatalf("uncorrected arm at max skew shows no violation; the hazard is gone")
	}
	for _, p := range points {
		if p.SyncViolationMs != 0 {
			t.Fatalf("corrected arm charged %.3fms at %gms skew", p.SyncViolationMs, p.SkewMs)
		}
	}
}

func TestRunSingleFigureSmokes(t *testing.T) {
	// A tiny virtual interval keeps this fast; output goes to stdout.
	if err := run([]string{"-figure", "13", "-duration", "500ms"}); err != nil {
		t.Fatalf("figure 13: %v", err)
	}
	if err := run([]string{"-figure", "8", "-duration", "250ms", "-csv"}); err != nil {
		t.Fatalf("figure 8 csv: %v", err)
	}
}
