package main

import (
	"testing"
	"time"
)

// TestObserversSweepReadScaling runs the observer-tier sweep and
// enforces its acceptance bars: the 16-observer cells scale aggregate
// certificate-read throughput at least 4× over the primary-only
// baseline at every chain depth, every cell serves p99 within the
// admitted δ_B with zero honesty violations, observer-served depth
// never exceeds the configured chain depth, and the tier actually
// absorbs reads (the offload is real, not a fallback to the primary).
func TestObserversSweepReadScaling(t *testing.T) {
	const deltaBMs = 120.0
	points, err := observersSweep(1, 1*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("got %d cells, want 10 ({0}×{1} + {1,4,16}×{1,2,3})", len(points))
	}
	for _, p := range points {
		if p.ReadsPerSec <= 0 {
			t.Errorf("observers=%d depth=%d: no reads served", p.Observers, p.ChainDepth)
		}
		if p.HonestyViolations != 0 {
			t.Errorf("observers=%d depth=%d: %d certificate honesty violations",
				p.Observers, p.ChainDepth, p.HonestyViolations)
		}
		if p.P99AgeMs > deltaBMs {
			t.Errorf("observers=%d depth=%d: p99 served age %.3fms exceeds δ_B=%.0fms",
				p.Observers, p.ChainDepth, p.P99AgeMs, deltaBMs)
		}
		if p.MaxServedDepth > p.ChainDepth {
			t.Errorf("observers=%d depth=%d: served a depth-%d certificate beyond the chain",
				p.Observers, p.ChainDepth, p.MaxServedDepth)
		}
		if p.Observers > 0 && p.ObserverShare <= 0 {
			t.Errorf("observers=%d depth=%d: tier served nothing (share=%.3f)",
				p.Observers, p.ChainDepth, p.ObserverShare)
		}
		if p.Observers == 0 && (p.ObserverShare != 0 || p.MaxServedDepth != 0) {
			t.Errorf("baseline cell reports observer traffic (share=%.3f depth=%d)",
				p.ObserverShare, p.MaxServedDepth)
		}
		if p.Observers == 16 && p.Scaling < 4 {
			t.Errorf("observers=16 depth=%d: read scaling %.2f×, want ≥4× over primary-only",
				p.ChainDepth, p.Scaling)
		}
	}
}
