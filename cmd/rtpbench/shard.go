package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/shard"
	"rtpb/internal/temporal"
)

// shardPoint is one shard count in the capacity-vs-shard-count sweep.
type shardPoint struct {
	// Shards is K, the number of primary-backup groups.
	Shards int `json:"shards"`
	// Offered and Admitted count the identical objects offered to the
	// placer and the ones some shard scheduled.
	Offered  int `json:"offered"`
	Admitted int `json:"admitted"`
	// WritesPerSec is the aggregate accepted client write rate across
	// all admitted objects, per second of virtual time.
	WritesPerSec float64 `json:"writes_per_sec"`
	// MeanUtilization is the mean per-shard planned CPU utilization.
	MeanUtilization float64 `json:"mean_utilization"`
}

// shardSweep measures cluster capacity against shard count: the same
// object set — sized to saturate a single pair almost immediately — is
// offered to clusters of K=1,2,4,8 groups, and each cluster then runs a
// full write workload on whatever it admitted. Everything is on the
// virtual clock, so the sweep is a pure function of (seed, duration).
func shardSweep(seed int64, duration time.Duration) ([]shardPoint, error) {
	const offered = 40
	specs := make([]core.ObjectSpec, offered)
	for i := range specs {
		specs[i] = core.ObjectSpec{
			Name:         fmt.Sprintf("obj%d", i),
			Size:         64,
			UpdatePeriod: 5 * time.Millisecond,
			Constraint: temporal.ExternalConstraint{
				DeltaP: 5 * time.Millisecond,
				DeltaB: 14 * time.Millisecond,
			},
		}
	}
	var points []shardPoint
	for _, k := range []int{1, 2, 4, 8} {
		c, err := shard.NewCluster(shard.Config{Shards: k, Seed: seed})
		if err != nil {
			return nil, err
		}
		admitted := 0
		for _, spec := range specs {
			if _, _, err := c.Place(spec); err != nil {
				continue
			}
			admitted++
			c.WriteEvery(spec.Name, spec.UpdatePeriod)
		}
		c.RunFor(duration)
		c.StopWriters()
		util := 0.0
		for _, st := range c.Statuses() {
			util += st.Utilization
		}
		points = append(points, shardPoint{
			Shards:          k,
			Offered:         offered,
			Admitted:        admitted,
			WritesPerSec:    float64(c.TotalWrites()) / duration.Seconds(),
			MeanUtilization: util / float64(k),
		})
		c.Stop()
	}
	return points, nil
}

// runShardCmd implements the "shard" subcommand: print the
// capacity-vs-shard-count sweep, and with -json merge it into the
// benchmark report file.
func runShardCmd(args []string) error {
	fs := flag.NewFlagSet("rtpbench shard", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed for loss and jitter")
	duration := fs.Duration("duration", 2*time.Second, "virtual measurement interval per shard count")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "merge the sweep into the JSON benchmark report")
	jsonPath := fs.String("json.out", "BENCH_rtpb.json", "path of the -json report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	points, err := shardSweep(*seed, *duration)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("shards,offered,admitted,writes_per_sec,mean_utilization")
		for _, p := range points {
			fmt.Printf("%d,%d,%d,%.1f,%.3f\n", p.Shards, p.Offered, p.Admitted, p.WritesPerSec, p.MeanUtilization)
		}
	} else {
		fmt.Println("capacity vs shard count (admission-aware placement, identical object set)")
		fmt.Printf("%-7s %-8s %-9s %-14s %s\n", "shards", "offered", "admitted", "writes/sec", "mean util")
		for _, p := range points {
			fmt.Printf("%-7d %-8d %-9d %-14.1f %.3f\n", p.Shards, p.Offered, p.Admitted, p.WritesPerSec, p.MeanUtilization)
		}
	}
	if !*jsonOut {
		return nil
	}
	// Merge into the existing report rather than clobbering the other
	// sweeps; a missing file starts a fresh report.
	var report benchReport
	if data, err := os.ReadFile(*jsonPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonPath, err)
		}
	}
	if report.Seed == 0 {
		report.Seed = *seed
	}
	report.Shard = points
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d shard counts, %v virtual each)\n", *jsonPath, len(points), *duration)
	return nil
}
