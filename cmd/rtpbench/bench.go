package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"rtpb/internal/chaos"
	"rtpb/internal/core"
	"rtpb/internal/experiments"
)

// benchPoint is one measured configuration in the JSON benchmark report.
type benchPoint struct {
	// Name labels the configuration.
	Name string `json:"name"`
	// Loss is the message-loss probability applied during measurement.
	Loss float64 `json:"loss"`
	// Objects and Admitted count the offered and admitted object set.
	Objects  int `json:"objects"`
	Admitted int `json:"admitted"`
	// Response statistics are client write response times in
	// milliseconds.
	ResponseMeanMs float64 `json:"response_mean_ms"`
	ResponseP99Ms  float64 `json:"response_p99_ms"`
	ResponseMaxMs  float64 `json:"response_max_ms"`
	// DistanceAvgMaxMs is the average maximum loss-induced
	// primary-backup distance (Figure 8's metric).
	DistanceAvgMaxMs float64 `json:"distance_avg_max_ms"`
	// StalenessAvgMaxMs is the average maximum raw backup staleness.
	StalenessAvgMaxMs float64 `json:"staleness_avg_max_ms"`
	// Sends, Applies, and Gaps count update transmissions, backup
	// applies, and detected sequence gaps during measurement.
	Sends   int `json:"sends"`
	Applies int `json:"applies"`
	Gaps    int `json:"gaps"`
	// RetransmitRequests and RetransmitSuppressed count gap-recovery
	// requests sent and those absorbed by the retransmission backoff.
	RetransmitRequests   int `json:"retransmit_requests"`
	RetransmitSuppressed int `json:"retransmit_suppressed"`
	// InconsistencyMs is the total time backup images spent beyond
	// their external bound, in milliseconds, over Excursions intervals.
	InconsistencyMs float64 `json:"inconsistency_ms"`
	Excursions      int     `json:"excursions"`
	// Utilization is the primary's planned CPU utilization.
	Utilization float64 `json:"utilization"`
}

// rejoinPoint is one crash-failover-rejoin run in the report: the full
// repair cycle (crash, promotion, directory-driven rejoin, chunked
// catch-up) at one loss rate.
type rejoinPoint struct {
	// Name labels the configuration.
	Name string `json:"name"`
	// Loss is the message-loss probability on every link.
	Loss float64 `json:"loss"`
	// CatchUpMs is the time from the rejoin fault's injection to the
	// rejoined replica's final object passing catch-up.
	CatchUpMs float64 `json:"catch_up_ms"`
	// Promotions and FinalEpoch record the failover the rejoin followed.
	Promotions int    `json:"promotions"`
	FinalEpoch uint32 `json:"final_epoch"`
	// Violations counts invariant failures (0 in a healthy run).
	Violations int `json:"violations"`
	// Mode marks the disk-vs-network transfer sweep entries ("disk" or
	// "network", from "rtpbench rejoin"); empty for the full
	// repair-cycle points above.
	Mode string `json:"mode,omitempty"`
	// TransferMs is the sweep's measured quantity: the anti-entropy
	// window from JoinAccept to the final state chunk. Directory polling
	// and failover latency — identical across modes — are excluded.
	TransferMs float64 `json:"transfer_ms,omitempty"`
	// SpeedupVsNetwork is, on disk-mode entries, the network-mode
	// transfer time at the same loss divided by this entry's; the repo
	// gates it at 10x for loss >= 10%.
	SpeedupVsNetwork float64 `json:"speedup_vs_network,omitempty"`
	// RestoredObjects counts values the disk-mode restart seeded from
	// its durable store before joining.
	RestoredObjects int `json:"restored_objects,omitempty"`
}

// benchReport is the file written by rtpbench -json.
type benchReport struct {
	// Seed and DurationMs make the report reproducible: the same pair
	// regenerates byte-identical numbers.
	Seed       int64        `json:"seed"`
	DurationMs float64      `json:"duration_ms"`
	Points     []benchPoint `json:"points"`
	// Rejoin is the repair-cycle sweep: rejoin catch-up time versus loss.
	Rejoin []rejoinPoint `json:"rejoin"`
	// Shard is the capacity-vs-shard-count sweep ("rtpbench shard").
	Shard []shardPoint `json:"shard,omitempty"`
	// Takeover is the promotion-latency-vs-object-count sweep ("rtpbench
	// takeover"). It is the one wall-clock section of the report: the
	// Promote call runs no virtual time, so its cost is measured directly
	// and varies between hosts, unlike every virtual-time sweep above.
	Takeover []takeoverPoint `json:"takeover,omitempty"`
	// Wire is the wire hot-path sweep ("rtpbench wire"): object count ×
	// frame batch size over the encode → datagram → decode round trip.
	// Wall-clock like Takeover (testing.Benchmark under the hood); the
	// shape to read is batched rows beating the batch=1 baseline on
	// msgs_per_sec and encode_allocs_per_op pinned at 0.
	Wire []wirePoint `json:"wire,omitempty"`
	// ClockSync is the skew-tolerance sweep ("rtpbench clocksync"):
	// admitted capacity and verified-bound accounting versus per-node
	// clock skew, with clock-sync correction on and off.
	ClockSync []clocksyncPoint `json:"clocksync,omitempty"`
	// Gateway is the front-tier fan-out sweep ("rtpbench gateway"):
	// broadcast throughput and p99 certificate age versus session and
	// group counts, with cert_reads_per_tick pinned to the object count
	// (the fan-in economy claim) and bound_violations at zero.
	Gateway []gatewayPoint `json:"gateway,omitempty"`
	// Observers is the observer-tier read-offload sweep ("rtpbench
	// observers"): served certificate-read throughput versus tier size
	// and chain depth, with the 16-observer cells gating ≥4× scaling
	// over the primary-only baseline, p99 served age within δ_B, and
	// honesty_violations pinned at zero.
	Observers []observerPoint `json:"observers,omitempty"`
}

// runBench measures the resilience-layer benchmark matrix — a fixed
// object set over a sweep of loss rates — and writes the JSON report.
// Everything runs on the virtual clock, so the report is a pure function
// of (seed, duration) and is suitable for checking in.
func runBench(path string, seed int64, duration time.Duration) error {
	msf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	report := benchReport{Seed: seed, DurationMs: msf(duration)}
	for _, cfg := range []struct {
		name string
		loss float64
	}{
		{"clean", 0},
		{"loss-10", 0.10},
		{"loss-25", 0.25},
	} {
		r, err := experiments.Run(experiments.Params{
			Seed:             seed,
			Delay:            2 * time.Millisecond,
			Jitter:           time.Millisecond,
			Loss:             cfg.loss,
			Ell:              5 * time.Millisecond,
			Objects:          16,
			ObjectSize:       64,
			ClientPeriod:     50 * time.Millisecond,
			DeltaP:           50 * time.Millisecond,
			Window:           50 * time.Millisecond,
			Scheduling:       core.ScheduleNormal,
			AdmissionControl: true,
			Duration:         duration,
		})
		if err != nil {
			return fmt.Errorf("bench %s: %w", cfg.name, err)
		}
		report.Points = append(report.Points, benchPoint{
			Name:                 cfg.name,
			Loss:                 cfg.loss,
			Objects:              r.Offered,
			Admitted:             r.Admitted,
			ResponseMeanMs:       msf(r.Response.Mean()),
			ResponseP99Ms:        msf(r.Response.Percentile(99)),
			ResponseMaxMs:        msf(r.Response.Max()),
			DistanceAvgMaxMs:     msf(r.Distance.AvgMax()),
			StalenessAvgMaxMs:    msf(r.StaleDistance.AvgMax()),
			Sends:                r.Sends,
			Applies:              r.Applies,
			Gaps:                 r.Gaps,
			RetransmitRequests:   r.RetransmitRequests,
			RetransmitSuppressed: r.RetransmitSuppressed,
			InconsistencyMs:      msf(r.InconsistencyTotal),
			Excursions:           r.Excursions,
			Utilization:          r.Utilization,
		})
	}
	// The repair-cycle sweep: the crash-failover-rejoin scenario at each
	// loss rate, measuring how long the rejoined replica takes to catch
	// up. Virtual time throughout, so the numbers replay exactly.
	for _, cfg := range []struct {
		name string
		loss float64
	}{
		{"rejoin-clean", 0},
		{"rejoin-loss-10", 0.10},
		{"rejoin-loss-25", 0.25},
	} {
		sc := chaos.RejoinBench(cfg.loss)
		sc.Seed = seed
		res, err := chaos.Run(sc)
		if err != nil {
			return fmt.Errorf("bench %s: %w", cfg.name, err)
		}
		report.Rejoin = append(report.Rejoin, rejoinPoint{
			Name:       cfg.name,
			Loss:       cfg.loss,
			CatchUpMs:  msf(res.RejoinCatchUp),
			Promotions: res.Promotions,
			FinalEpoch: res.FinalEpoch,
			Violations: len(res.Violations),
		})
	}

	// The disk-vs-network rejoin transfer sweep ("rtpbench rejoin"): same
	// repair cycle, but against a wide mostly-quiescent state, comparing a
	// restart that replays its local durable tail with one that streams
	// everything over the wire. The sweep enforces the 10x-at->=10%-loss
	// speedup gate itself.
	rejoinPoints, err := rejoinSweep(seed)
	if err != nil {
		return fmt.Errorf("bench rejoin sweep: %w", err)
	}
	report.Rejoin = append(report.Rejoin, rejoinPoints...)

	// The sharding sweep: cluster capacity and aggregate write throughput
	// against shard count, on the same fixed 2s virtual interval the
	// standalone "shard" subcommand defaults to.
	shardPoints, err := shardSweep(seed, 2*time.Second)
	if err != nil {
		return fmt.Errorf("bench shard sweep: %w", err)
	}
	report.Shard = shardPoints

	// The takeover sweep: in-place promotion latency against object
	// count. Wall-clock (see benchReport.Takeover), so these numbers
	// move between runs; the flat shape is the claim being recorded.
	takeoverPoints, err := takeoverSweep(seed, 5, []int{1, 16, 64, 256})
	if err != nil {
		return fmt.Errorf("bench takeover sweep: %w", err)
	}
	report.Takeover = takeoverPoints

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d configurations, %v virtual each)\n", path, len(report.Points), duration)
	return nil
}
