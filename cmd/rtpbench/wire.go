package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"rtpb/internal/wire"
	"rtpb/internal/xkernel"
)

// wirePoint is one (objects, batch) cell of the wire hot-path sweep. Like
// the takeover sweep it records wall-clock measurements (testing.Benchmark
// under the hood), so absolute numbers vary between hosts; the shape — the
// batched rows beating the batch=1 row on msgs/sec, and the send path
// holding 0 allocs — is what the report asserts.
type wirePoint struct {
	// Objects is the distinct-object working set the update stream
	// rotates through.
	Objects int `json:"objects"`
	// Batch is the frame batch size; 1 is the one-datagram-per-update
	// baseline (the pre-framing wire path, byte-identical on the wire).
	Batch int `json:"batch"`
	// MsgsPerSec is update messages through the full encode → datagram →
	// decode round trip per wall-clock second.
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// NsPerMsg is the inverse view: wall nanoseconds per update message.
	NsPerMsg float64 `json:"ns_per_msg"`
	// EncodeAllocsPerOp counts allocations per flush on the send side
	// alone (builder reset + encode + datagram finalize). The allocation
	// wall in internal/wire pins this at 0; the column keeps it visible
	// in the report.
	EncodeAllocsPerOp int64 `json:"encode_allocs_per_op"`
	// BytesPerOp / AllocsPerOp are the full round trip's per-flush
	// allocation footprint, receive side included (decoding materializes
	// message values, so this is nonzero by design and scales with
	// batch, not with messages × datagram overhead).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// wireWorkingSet builds the rotating update stream: one update value per
// object, 64-byte payloads (the EXPERIMENTS.md baseline object size).
func wireWorkingSet(objects int) []*wire.Update {
	upds := make([]*wire.Update, objects)
	for i := range upds {
		payload := make([]byte, 64)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		upds[i] = &wire.Update{
			Epoch:    1,
			ObjectID: uint32(i + 1),
			Version:  1_700_000_000_000_000_000,
			Payload:  payload,
		}
	}
	return upds
}

// wireRoundTrip measures the full hot path for one (objects, batch) cell:
// frame `batch` updates into one datagram (bare encoding when batch is 1,
// exactly the unbatched wire format), hand it off as an xkernel message —
// the send path's allocation and copy — and decode the batch back out.
// One benchmark op is one flush carrying `batch` messages.
func wireRoundTrip(objects, batch int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		upds := wireWorkingSet(objects)
		fb := wire.NewFrameBuilder()
		next := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fb.Reset()
			for j := 0; j < batch; j++ {
				u := upds[next]
				next = (next + 1) % objects
				u.Seq++
				fb.Append(u)
			}
			m := xkernel.NewMessage(fb.Datagram())
			msgs, err := wire.DecodeFrame(m.Bytes())
			if err != nil {
				b.Fatal(err)
			}
			if len(msgs) != batch {
				b.Fatalf("decoded %d messages, want %d", len(msgs), batch)
			}
		}
	})
}

// wireEncodeOnly measures the send side alone, the path the allocation
// wall pins at zero.
func wireEncodeOnly(objects, batch int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		upds := wireWorkingSet(objects)
		fb := wire.NewFrameBuilder()
		next := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fb.Reset()
			for j := 0; j < batch; j++ {
				u := upds[next]
				next = (next + 1) % objects
				u.Seq++
				fb.Append(u)
			}
			if fb.Datagram() == nil {
				b.Fatal("no datagram")
			}
		}
	})
}

// wireSweep runs the objects × batch matrix.
func wireSweep(objectCounts, batches []int) []wirePoint {
	var points []wirePoint
	for _, objects := range objectCounts {
		for _, batch := range batches {
			rt := wireRoundTrip(objects, batch)
			enc := wireEncodeOnly(objects, batch)
			nsPerMsg := float64(rt.NsPerOp()) / float64(batch)
			var msgsPerSec float64
			if nsPerMsg > 0 {
				msgsPerSec = 1e9 / nsPerMsg
			}
			points = append(points, wirePoint{
				Objects:           objects,
				Batch:             batch,
				MsgsPerSec:        msgsPerSec,
				NsPerMsg:          nsPerMsg,
				EncodeAllocsPerOp: enc.AllocsPerOp(),
				BytesPerOp:        rt.AllocedBytesPerOp(),
				AllocsPerOp:       rt.AllocsPerOp(),
			})
		}
	}
	return points
}

// runWireCmd implements the "wire" subcommand: the encode → datagram →
// decode hot-path sweep over object-count × batch-size, and with -json
// merge it into the benchmark report file.
func runWireCmd(args []string) error {
	fs := flag.NewFlagSet("rtpbench wire", flag.ContinueOnError)
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := fs.Bool("json", false, "merge the sweep into the JSON benchmark report")
	jsonPath := fs.String("json.out", "BENCH_rtpb.json", "path of the -json report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	objectCounts := []int{16, 64, 256}
	batches := []int{1, 8, 32}
	points := wireSweep(objectCounts, batches)

	if *csv {
		fmt.Println("objects,batch,msgs_per_sec,ns_per_msg,encode_allocs_per_op,bytes_per_op,allocs_per_op")
		for _, p := range points {
			fmt.Printf("%d,%d,%.0f,%.1f,%d,%d,%d\n",
				p.Objects, p.Batch, p.MsgsPerSec, p.NsPerMsg,
				p.EncodeAllocsPerOp, p.BytesPerOp, p.AllocsPerOp)
		}
	} else {
		fmt.Println("wire hot path: encode -> datagram -> decode (batch=1 is one datagram per update)")
		fmt.Printf("%-8s %-6s %-13s %-10s %-14s %-10s %s\n",
			"objects", "batch", "msgs/sec", "ns/msg", "encode allocs", "B/op", "allocs/op")
		for _, p := range points {
			fmt.Printf("%-8d %-6d %-13.0f %-10.1f %-14d %-10d %d\n",
				p.Objects, p.Batch, p.MsgsPerSec, p.NsPerMsg,
				p.EncodeAllocsPerOp, p.BytesPerOp, p.AllocsPerOp)
		}
	}
	if !*jsonOut {
		return nil
	}
	var report benchReport
	if data, err := os.ReadFile(*jsonPath); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonPath, err)
		}
	}
	report.Wire = points
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d wire sweep points)\n", *jsonPath, len(points))
	return nil
}
