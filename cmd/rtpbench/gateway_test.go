package main

import (
	"testing"
	"time"
)

// TestGatewaySweepFanInEconomy runs the front-tier sweep and enforces
// its two acceptance bars: every delivered certificate honors its
// admitted bound (zero violations at every scale, 10k sessions
// included), and the certificate-read fan-in per broadcast tick tracks
// the object count, never the session count.
func TestGatewaySweepFanInEconomy(t *testing.T) {
	points, err := gatewaySweep(1, 1*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d cells, want 6", len(points))
	}
	perSession := make(map[int]float64) // fan-out per session, groups=1 cells
	for _, p := range points {
		if p.BoundViolations != 0 {
			t.Errorf("sessions=%d groups=%d: %d certificate bound violations",
				p.Sessions, p.Groups, p.BoundViolations)
		}
		if p.Broadcasts == 0 || p.FanOutPerSec == 0 {
			t.Errorf("sessions=%d groups=%d: no broadcast traffic (ticks=%d fanout=%.1f)",
				p.Sessions, p.Groups, p.Broadcasts, p.FanOutPerSec)
		}
		// Two objects per group: fan-in must equal the object count.
		wantReads := float64(2 * p.Groups)
		if p.CertReadsPerTick > wantReads+0.01 {
			t.Errorf("sessions=%d groups=%d: cert reads/tick = %.2f, want ≤ %.2f (fan-in must not scale with sessions)",
				p.Sessions, p.Groups, p.CertReadsPerTick, wantReads)
		}
		if p.P99AgeMs <= 0 {
			t.Errorf("sessions=%d groups=%d: p99 age = %.3fms, want > 0", p.Sessions, p.Groups, p.P99AgeMs)
		}
		if p.Groups == 1 {
			perSession[p.Sessions] = p.FanOutPerSec / float64(p.Sessions)
		}
	}
	// Fan-out throughput scales with the session count: per-session
	// delivery rate is flat across 100 → 10k (no coalescing or drops in
	// the unloaded sweep).
	base := perSession[100]
	for _, sessions := range []int{1000, 10000} {
		got := perSession[sessions]
		if got < base*0.99 || got > base*1.01 {
			t.Errorf("per-session fan-out at %d sessions = %.2f msg/s, want %.2f ±1%%",
				sessions, got, base)
		}
	}
}
