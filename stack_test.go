package rtpb_test

import (
	"bytes"
	"testing"
	"time"

	"rtpb"
	"rtpb/internal/clock"
	"rtpb/internal/netsim"
)

// TestLargeObjectOverFragmentedStack replicates an object far larger than
// the transport MTU through the uport→frag→driver graph, end to end.
func TestLargeObjectOverFragmentedStack(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 5)
	if err := net.SetDefaultLink(rtpb.LinkParams{Delay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	pEP, err := net.Endpoint("primary")
	if err != nil {
		t.Fatal(err)
	}
	bEP, err := net.Endpoint("backup")
	if err != nil {
		t.Fatal(err)
	}
	const mtu = 512
	pPort, err := rtpb.NewStackMTU(pEP, clk, mtu)
	if err != nil {
		t.Fatal(err)
	}
	bPort, err := rtpb.NewStackMTU(bEP, clk, mtu)
	if err != nil {
		t.Fatal(err)
	}
	primary, err := rtpb.NewPrimary(rtpb.Config{
		Clock: clk, Port: pPort, Peer: "backup:7000", Ell: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := rtpb.NewBackup(rtpb.Config{
		Clock: clk, Port: bPort, Peer: "primary:7000", Ell: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := primary.Register(rtpb.ObjectSpec{
		Name:         "image",
		Size:         8192,
		UpdatePeriod: 40 * time.Millisecond,
		Constraint: rtpb.ExternalConstraint{
			DeltaP: 50 * time.Millisecond,
			DeltaB: 300 * time.Millisecond,
		},
	}); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	payload := bytes.Repeat([]byte{0xC7, 0x01, 0x55, 0xAA}, 2048) // 8 KiB ≫ 512 B MTU
	primary.ClientWrite("image", payload, nil)
	clk.RunFor(500 * time.Millisecond)
	got, _, ok := backup.Value("image")
	if !ok {
		t.Fatal("backup missing large object")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("large object corrupted over fragmentation: %d bytes", len(got))
	}
}

// TestLargeObjectFragmentsSurviveModerateLoss checks that the whole-update
// semantics hold under loss: a fragment loss costs that update, but the
// next periodic update heals the backup.
func TestLargeObjectFragmentsSurviveModerateLoss(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 6)
	if err := net.SetDefaultLink(rtpb.LinkParams{Delay: 2 * time.Millisecond, LossProb: 0.02}); err != nil {
		t.Fatal(err)
	}
	pEP, _ := net.Endpoint("primary")
	bEP, _ := net.Endpoint("backup")
	pPort, _ := rtpb.NewStackMTU(pEP, clk, 256)
	bPort, _ := rtpb.NewStackMTU(bEP, clk, 256)
	primary, err := rtpb.NewPrimary(rtpb.Config{
		Clock: clk, Port: pPort, Peer: "backup:7000", Ell: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := rtpb.NewBackup(rtpb.Config{
		Clock: clk, Port: bPort, Peer: "primary:7000", Ell: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := primary.Register(rtpb.ObjectSpec{
		Name:         "blob",
		Size:         2048,
		UpdatePeriod: 40 * time.Millisecond,
		Constraint: rtpb.ExternalConstraint{
			DeltaP: 50 * time.Millisecond,
			DeltaB: 300 * time.Millisecond,
		},
	}); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	want := bytes.Repeat([]byte{0x42}, 2048)
	writer := clock.NewPeriodic(clk, 0, 40*time.Millisecond, func() {
		primary.ClientWrite("blob", want, nil)
	})
	clk.RunFor(5 * time.Second)
	writer.Stop()
	got, _, ok := backup.Value("blob")
	if !ok {
		t.Fatal("backup missing object under loss")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("object corrupted: partial fragments were applied")
	}
}
