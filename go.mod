module rtpb

go 1.23
