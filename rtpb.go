// Package rtpb is a Go implementation of Real-Time Primary-Backup (RTPB)
// replication with temporal consistency guarantees (Zou & Jahanian,
// ICDCS 1998).
//
// RTPB is a passive (primary-backup) replication scheme for real-time
// systems. Clients register objects with declared update periods and
// temporal-consistency constraints; the primary admits objects only when
// the constraints are achievable (Section 4.2 of the paper), services
// client writes, and schedules decoupled update transmissions to the
// backup so that both replicas' images stay temporally consistent with
// the external world (Theorems 1-5) and with each other (Theorem 6). A
// heartbeat failure detector drives failover: on primary failure the
// backup promotes itself, updates the name service, and recruits a
// replacement.
//
// The package exposes three layers:
//
//   - The replica API (NewReplica and the NewPrimary/NewBackup role
//     shorthands, Config, ObjectSpec), which runs over any Transport —
//     the deterministic simulated network for tests and experiments, or
//     real UDP sockets via cmd/rtpbd. A replica is one state machine
//     that flips roles in place: failover.Promote turns a backup into
//     the serving primary without copying its object table.
//   - The analysis API (temporal conditions, scheduling feasibility and
//     phase-variance bounds) re-exported from internal/temporal and
//     internal/sched.
//   - SimCluster, a turnkey simulated two-replica deployment in virtual
//     time, used by the examples and the benchmark harness that
//     regenerates the paper's figures.
package rtpb

import (
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/failover"
	"rtpb/internal/gateway"
	"rtpb/internal/netsim"
	"rtpb/internal/sched"
	"rtpb/internal/shard"
	"rtpb/internal/temporal"
	"rtpb/internal/xkernel"
)

// Core replication types.
type (
	// Config configures a Primary or Backup replica.
	Config = core.Config
	// ObjectSpec declares an object at registration time.
	ObjectSpec = core.ObjectSpec
	// Decision is an admission-control outcome.
	Decision = core.Decision
	// Replica is the role-based RTPB replica state machine: one object
	// table and protocol engine that serves as primary or backup and
	// flips roles in place (Promote/Demote) without copying state.
	Replica = core.Replica
	// Role is a replica's current role.
	Role = core.Role
	// Primary is a Replica serving the primary role (alias retained for
	// the paper's vocabulary).
	Primary = core.Primary
	// Backup is a Replica serving the backup role (alias retained for
	// the paper's vocabulary).
	Backup = core.Backup
	// CostModel maps protocol operations to CPU time.
	CostModel = core.CostModel
	// SchedulingMode selects normal or compressed update scheduling.
	SchedulingMode = core.SchedulingMode
	// SchedTest selects the admission-time schedulability test.
	SchedTest = core.SchedTest
)

// Temporal-consistency model types.
type (
	// ExternalConstraint bounds an object image's staleness relative to
	// the external world at the primary (DeltaP) and backup (DeltaB).
	ExternalConstraint = temporal.ExternalConstraint
	// InterObjectConstraint bounds the relative staleness of two
	// objects.
	InterObjectConstraint = temporal.InterObjectConstraint
	// ConsistencyMonitor verifies temporal-consistency guarantees
	// against observed update streams.
	ConsistencyMonitor = temporal.Monitor
)

// Failover types.
type (
	// Detector is the ping/ack heartbeat failure detector.
	Detector = failover.Detector
	// DetectorConfig tunes the failure detector.
	DetectorConfig = failover.DetectorConfig
	// NameService records which replica currently serves as primary
	// (in memory; simulations).
	NameService = failover.NameService
	// FileNameService is a name service persisted to the paper's "name
	// file" (real deployments).
	FileNameService = failover.FileNameService
	// Directory abstracts over the two name services.
	Directory = failover.Directory
	// PromoteOptions parameterizes a backup-to-primary promotion.
	PromoteOptions = failover.PromoteOptions
)

// Sharding types (beyond the paper): many primary-backup groups behind
// one placement-and-routing surface.
type (
	// ShardedCluster runs K independent primary-backup groups with
	// admission-aware placement, object routing, and migration.
	ShardedCluster = shard.Cluster
	// ShardedClusterConfig configures a simulated sharded cluster.
	ShardedClusterConfig = shard.Config
	// ShardStatus is one group's externally visible state.
	ShardStatus = shard.Status
	// Placer bin-packs objects across shards using each shard's own
	// admission test as the fit function.
	Placer = shard.Placer
	// ShardRouter is the object→shard routing table.
	ShardRouter = shard.Router
)

// ErrClusterFull reports that no shard could schedule an object.
var ErrClusterFull = shard.ErrClusterFull

// Gateway front-tier types (beyond the paper): the client-facing session
// and group layer that broadcasts staleness certificates at scale.
type (
	// Gateway terminates client sessions, fans out per-group staleness
	// certificates each broadcast tick, and sheds sessions when the
	// backend's admission control or overload governor pushes back.
	Gateway = gateway.Gateway
	// GatewayConfig assembles a Gateway.
	GatewayConfig = gateway.Config
	// GatewayStats is the gateway's cumulative activity.
	GatewayStats = gateway.Stats
	// GatewaySession is one admitted client session.
	GatewaySession = gateway.Session
	// GatewayGroup is a named subscription set bound to objects.
	GatewayGroup = gateway.Group
	// GatewayFrame is one broadcast unit: an object's staleness
	// certificate under a per-object sequence number.
	GatewayFrame = gateway.Frame
	// GatewaySink receives a session's broadcast frames.
	GatewaySink = gateway.Sink
	// GatewayBackend is the replicated store a gateway fronts.
	GatewayBackend = gateway.Backend
	// ReplicaBackend fronts a single primary replica.
	ReplicaBackend = gateway.ReplicaBackend
	// ClusterBackend fronts a sharded cluster.
	ClusterBackend = gateway.ClusterBackend
	// Certificate is a bounded-staleness read: value, version, age, and
	// the mode-effective staleness bound the replica currently honors.
	Certificate = core.Certificate
)

// NewGateway builds and starts a gateway front tier over a backend.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return gateway.New(cfg) }

// Infrastructure types.
type (
	// Clock is the time substrate all replicas run on.
	Clock = clock.Clock
	// SimClock is the deterministic virtual-time clock.
	SimClock = clock.SimClock
	// RealClock runs callbacks on a real-time event loop.
	RealClock = clock.RealClock
	// LinkParams describes a simulated link's delay, jitter, and loss.
	LinkParams = netsim.LinkParams
	// Transport is the datagram service a replica's protocol graph
	// rides on.
	Transport = xkernel.Transport
	// PortProtocol is the UDP-like port protocol of the x-kernel stack.
	PortProtocol = xkernel.PortProtocol
	// Addr is a protocol participant address ("host" or "host:port").
	Addr = xkernel.Addr
)

// Scheduling modes.
const (
	// ScheduleNormal sends each object's update every
	// SlackFactor·(δ_i − ℓ).
	ScheduleNormal = core.ScheduleNormal
	// ScheduleCompressed sends as many updates as the CPU allows.
	ScheduleCompressed = core.ScheduleCompressed
)

// Admission-time schedulability tests.
const (
	// SchedTestRMBound is the Liu & Layland utilization bound (default).
	SchedTestRMBound = core.SchedTestRMBound
	// SchedTestRMExact is rate-monotonic response-time analysis.
	SchedTestRMExact = core.SchedTestRMExact
	// SchedTestEDF is the EDF density test.
	SchedTestEDF = core.SchedTestEDF
	// SchedTestDCS is the pinwheel S_r test of Theorem 3.
	SchedTestDCS = core.SchedTestDCS
)

// Replica roles.
const (
	// RolePrimary marks the replica serving client writes.
	RolePrimary = core.RolePrimary
	// RoleBackup marks the replica applying replicated updates.
	RoleBackup = core.RoleBackup
)

// RTPBPort is the well-known port the RTPB protocol listens on.
const RTPBPort = core.RTPBPort

// NewShardedCluster builds and starts a simulated sharded cluster: K
// independent primary-backup groups on one fabric, fronted by the
// admission-aware placer and the object router (see internal/shard).
func NewShardedCluster(cfg ShardedClusterConfig) (*ShardedCluster, error) {
	return shard.NewCluster(cfg)
}

// NewReplica builds a replica starting in the given role.
func NewReplica(cfg Config, role Role) (*Replica, error) { return core.NewReplica(cfg, role) }

// NewPrimary builds a replica starting in the primary role.
func NewPrimary(cfg Config) (*Primary, error) { return core.NewPrimary(cfg) }

// NewBackup builds a replica starting in the backup role.
func NewBackup(cfg Config) (*Backup, error) { return core.NewBackup(cfg) }

// NewSimClock returns a deterministic virtual-time clock.
func NewSimClock() *SimClock { return clock.NewSim() }

// NewRealClock starts a wall-clock event loop; Stop it when done.
func NewRealClock() *RealClock { return clock.NewReal() }

// NewMonitor returns an empty temporal-consistency monitor.
func NewMonitor() *ConsistencyMonitor { return temporal.NewMonitor() }

// NewNameService returns an empty in-memory primary directory.
func NewNameService() *NameService { return failover.NewNameService() }

// OpenFileNameService loads (or creates) a persistent name file.
func OpenFileNameService(path string) (*FileNameService, error) {
	return failover.OpenFileNameService(path)
}

// NewDetector builds a heartbeat failure detector (see failover.NewDetector).
func NewDetector(clk Clock, cfg DetectorConfig, send func() uint64, onDead func()) (*Detector, error) {
	return failover.NewDetector(clk, cfg, send, onDead)
}

// DefaultDetectorConfig returns the heartbeat configuration used by the
// examples.
func DefaultDetectorConfig() DetectorConfig { return failover.DefaultDetectorConfig() }

// Promote executes the Section 4.4 takeover on a backup that has declared
// the primary dead.
func Promote(b *Backup, opts PromoteOptions) (*Primary, error) { return failover.Promote(b, opts) }

// Recruit points a serving primary at a fresh replacement backup.
func Recruit(p *Primary, backupAddr Addr) error { return failover.Recruit(p, backupAddr) }

// NewStack assembles the paper's protocol graph (Figure 5) — RTPB's port
// protocol over a network driver over the given transport — and returns
// the port protocol a replica Config needs.
func NewStack(tr Transport) (*PortProtocol, error) {
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(tr)},
	})
	if err != nil {
		return nil, err
	}
	p, _ := g.Protocol("uport")
	return p.(*xkernel.PortProtocol), nil
}

// NewStackMTU assembles the protocol graph with a fragmentation layer
// between the port protocol and the driver (uport → frag → driver), so
// objects larger than the transport MTU replicate transparently. Both
// replicas must use the same stack shape.
func NewStackMTU(tr Transport, clk Clock, mtu int) (*PortProtocol, error) {
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "frag", Build: xkernel.PortFactory()},
		{Name: "frag", Below: "driver", Build: xkernel.FragFactory(xkernel.FragOptions{
			MTU:   mtu,
			Clock: clk,
		})},
		{Name: "driver", Build: xkernel.DriverFactory(tr)},
	})
	if err != nil {
		return nil, err
	}
	p, _ := g.Protocol("uport")
	return p.(*xkernel.PortProtocol), nil
}

// MaxPrimaryPeriod returns the largest client update period satisfying
// external consistency at the primary (Theorem 1): δ_i^P − v_i.
func MaxPrimaryPeriod(deltaP, phaseVariance time.Duration) time.Duration {
	return temporal.MaxPrimaryPeriod(deltaP, phaseVariance)
}

// MaxBackupPeriod returns the largest backup-update period satisfying
// external consistency at the backup (Theorem 5 simplification, with zero
// phase variance): (δ_i^B − δ_i^P) − ℓ.
func MaxBackupPeriod(c ExternalConstraint, ell time.Duration) time.Duration {
	return temporal.MaxBackupPeriodTheorem5(c, ell)
}

// ZeroPhaseVarianceAchievable reports Theorem 3's condition: the pinwheel
// scheduler S_r achieves zero phase variance for every task if
// Σ e_i/p_i ≤ n(2^{1/n} − 1).
func ZeroPhaseVarianceAchievable(ts sched.TaskSet) bool {
	return sched.ZeroPhaseVarianceAchievable(ts)
}
