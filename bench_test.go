// Benchmark harness: one benchmark per figure of the paper's evaluation
// section (Figures 6-12), plus validation benches for the theory
// (Theorems 2, 3, 5) and ablation benches for the design choices called
// out in DESIGN.md. Each figure benchmark regenerates the corresponding
// data table on the simulated deployment and prints it once; the
// benchmark time measures the cost of producing one data point sweep.
//
// The benches use a short virtual measurement interval per point so the
// whole suite stays fast; cmd/rtpbench regenerates the figures with
// longer, lower-variance runs.
package rtpb_test

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rtpb"
	"rtpb/internal/core"
	"rtpb/internal/experiments"
	"rtpb/internal/sched"
	"rtpb/internal/temporal"
	"rtpb/internal/trace"
)

// rtpbSimCluster aliases the public cluster type for the bench helpers.
type rtpbSimCluster = rtpb.SimCluster

func newSimCluster(seed int64) (*rtpbSimCluster, error) {
	return rtpb.NewSimCluster(rtpb.SimClusterConfig{
		Seed: seed,
		Link: rtpb.LinkParams{Delay: 3 * time.Millisecond},
	})
}

func demoObjectSpec(name string) rtpb.ObjectSpec {
	return rtpb.ObjectSpec{
		Name:         name,
		Size:         32,
		UpdatePeriod: 40 * time.Millisecond,
		Constraint: rtpb.ExternalConstraint{
			DeltaP: 50 * time.Millisecond,
			DeltaB: 250 * time.Millisecond,
		},
	}
}

// benchDuration is the virtual measurement interval per data point.
const benchDuration = 2 * time.Second

// seedFlag shifts every benchmark's fixed seeds (go test -bench . -seed=N)
// so alternative simulated schedules can be explored; the default 0 keeps
// runs byte-identical to the committed seeds.
var seedFlag = flag.Int64("seed", 0, "offset added to the benchmarks' fixed seeds")

// benchSeed derives the i-th iteration's seed from its committed base.
func benchSeed(i int, base int64) int64 { return int64(i) + base + *seedFlag }

var printOnce sync.Map

// printFigure emits the regenerated table once per benchmark name.
func printFigure(b *testing.B, fig *trace.Figure) {
	b.Helper()
	if _, dup := printOnce.LoadOrStore(b.Name(), true); !dup {
		fmt.Println()
		fmt.Print(fig.Render())
	}
}

func benchFigure(b *testing.B, gen func(int64, time.Duration) (*trace.Figure, error)) {
	b.Helper()
	var fig *trace.Figure
	for i := 0; i < b.N; i++ {
		f, err := gen(1+*seedFlag, benchDuration)
		if err != nil {
			b.Fatal(err)
		}
		fig = f
	}
	printFigure(b, fig)
}

func BenchmarkFigure6ResponseTimeWithAC(b *testing.B) {
	benchFigure(b, experiments.Figure6)
}

func BenchmarkFigure7ResponseTimeNoAC(b *testing.B) {
	benchFigure(b, experiments.Figure7)
}

func BenchmarkFigure8DistanceVsLoss(b *testing.B) {
	benchFigure(b, experiments.Figure8)
}

func BenchmarkFigure9DistanceWithAC(b *testing.B) {
	benchFigure(b, experiments.Figure9)
}

func BenchmarkFigure10DistanceNoAC(b *testing.B) {
	benchFigure(b, experiments.Figure10)
}

func BenchmarkFigure11InconsistencyNormal(b *testing.B) {
	benchFigure(b, experiments.Figure11)
}

func BenchmarkFigure12InconsistencyCompressed(b *testing.B) {
	benchFigure(b, experiments.Figure12)
}

// BenchmarkTheorem2PhaseVarianceBounds validates Theorem 2 empirically:
// across random task sets, the measured phase variance under EDF and RM
// never exceeds the analytic bounds x·p−e and (x·p)/(n(2^{1/n}−1))−e.
func BenchmarkTheorem2PhaseVarianceBounds(b *testing.B) {
	var worstEDF, worstRM float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed(i, 1)))
		ts := randomBenchTaskSet(rng, 2+rng.Intn(5), 0.8)
		u := ts.Utilization()
		for _, policy := range []sched.Policy{sched.PolicyEDF, sched.PolicyRM} {
			if policy == sched.PolicyRM && !sched.FeasibleRM(ts) {
				continue
			}
			tr, err := sched.Simulate(ts, policy, time.Second)
			if err != nil {
				b.Fatal(err)
			}
			for task := range ts {
				v, ok := tr.PhaseVariance(task, 0)
				if !ok {
					continue
				}
				var bound time.Duration
				if policy == sched.PolicyEDF {
					bound = sched.PhaseVarianceBoundEDF(ts[task], u)
				} else {
					bound = sched.PhaseVarianceBoundRM(ts[task], u, len(ts))
				}
				if v > bound {
					b.Fatalf("Theorem 2 violated: %s v=%v > bound %v for %+v",
						policy, v, bound, ts[task])
				}
				ratio := 0.0
				if bound > 0 {
					ratio = float64(v) / float64(bound)
				}
				if policy == sched.PolicyEDF && ratio > worstEDF {
					worstEDF = ratio
				}
				if policy == sched.PolicyRM && ratio > worstRM {
					worstRM = ratio
				}
			}
		}
	}
	b.ReportMetric(worstEDF, "worstEDFratio")
	b.ReportMetric(worstRM, "worstRMratio")
}

// BenchmarkTheorem3ZeroPhaseVariance validates Theorem 3: under the
// pinwheel scheduler S_r, every task set within Σe/p ≤ n(2^{1/n}−1) shows
// exactly zero phase variance after the transient.
func BenchmarkTheorem3ZeroPhaseVariance(b *testing.B) {
	checked := 0
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed(i, 100)))
		ts := randomBenchTaskSet(rng, 2+rng.Intn(5), 0.6)
		if !sched.ZeroPhaseVarianceAchievable(ts) {
			continue
		}
		tr, err := sched.Simulate(ts, sched.PolicyDCS, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		for task := range ts {
			if v, ok := tr.PhaseVariance(task, 2); ok {
				checked++
				if v != 0 {
					b.Fatalf("Theorem 3 violated: v=%v under S_r for %+v", v, ts[task])
				}
			}
		}
	}
	b.ReportMetric(float64(checked), "tasksChecked")
}

// BenchmarkTheorem5BackupWindow validates the Theorem 5 admission rule on
// the live protocol: with the update period at the admitted value
// (half the window, per §4.3) the backup never violates its external
// bound on a lossless link, while a run whose constraint demands an
// infeasible window (δ ≤ ℓ) is rejected outright.
func BenchmarkTheorem5BackupWindow(b *testing.B) {
	violations := 0
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(experiments.Params{
			Seed:             benchSeed(i, 1),
			Delay:            2 * time.Millisecond,
			Jitter:           time.Millisecond,
			Ell:              5 * time.Millisecond,
			Objects:          4,
			ObjectSize:       32,
			ClientPeriod:     40 * time.Millisecond,
			DeltaP:           50 * time.Millisecond,
			Window:           100 * time.Millisecond,
			Scheduling:       core.ScheduleNormal,
			AdmissionControl: true,
			Duration:         benchDuration,
		})
		if err != nil {
			b.Fatal(err)
		}
		violations += r.Excursions
	}
	if violations != 0 {
		b.Fatalf("lossless runs produced %d consistency excursions; Theorem 5 schedule failed", violations)
	}
	b.ReportMetric(0, "violations")
}

// BenchmarkAblationSlackFactor compares the paper's half-window update
// period against scheduling at the Theorem 5 boundary (no slack):
// without slack, message loss pushes the backup out of its window far
// more often.
func BenchmarkAblationSlackFactor(b *testing.B) {
	run := func(slack float64, seed int64) time.Duration {
		r, err := experiments.Run(experiments.Params{
			Seed:             seed,
			Delay:            2 * time.Millisecond,
			Jitter:           time.Millisecond,
			Loss:             0.1,
			Ell:              5 * time.Millisecond,
			Objects:          16,
			ObjectSize:       64,
			ClientPeriod:     25 * time.Millisecond,
			DeltaP:           30 * time.Millisecond,
			Window:           60 * time.Millisecond,
			Scheduling:       core.ScheduleNormal,
			AdmissionControl: true,
			SlackFactor:      slack,
			Duration:         benchDuration,
		})
		if err != nil {
			b.Fatal(err)
		}
		return r.InconsistencyTotal
	}
	var half, full time.Duration
	for i := 0; i < b.N; i++ {
		half += run(0.5, benchSeed(i, 1))
		full += run(1.0, benchSeed(i, 1))
	}
	if _, dup := printOnce.LoadOrStore(b.Name(), true); !dup {
		fmt.Printf("\nAblation (slack factor, 10%% loss): inconsistency with r=(δ−ℓ)/2: %v; with r=δ−ℓ: %v\n",
			half/time.Duration(b.N), full/time.Duration(b.N))
	}
	if full <= half {
		b.Fatalf("no-slack schedule (%v) not worse than half-window schedule (%v) under loss", full, half)
	}
}

// BenchmarkAblationGapRecovery compares backup-initiated retransmission
// (the §4.3 design) against dropping it. Reproduction finding: because
// RTPB updates carry the object's full state, the very message whose
// arrival reveals a sequence gap has already healed the backup, so
// gap-triggered retransmission changes inconsistency only marginally
// (it helps when a client write lands between the trigger update's send
// and the retransmission). The bench asserts the two designs stay within
// 25% of each other, documenting that the ACK-less protocol does not
// depend on the recovery path for its guarantees.
func BenchmarkAblationGapRecovery(b *testing.B) {
	run := func(disable bool, seed int64) time.Duration {
		r, err := experiments.Run(experiments.Params{
			Seed:               seed,
			Delay:              2 * time.Millisecond,
			Jitter:             time.Millisecond,
			Loss:               0.15,
			Ell:                5 * time.Millisecond,
			Objects:            16,
			ObjectSize:         64,
			ClientPeriod:       25 * time.Millisecond,
			DeltaP:             30 * time.Millisecond,
			Window:             60 * time.Millisecond,
			Scheduling:         core.ScheduleNormal,
			AdmissionControl:   true,
			DisableGapRecovery: disable,
			Duration:           benchDuration,
		})
		if err != nil {
			b.Fatal(err)
		}
		return r.InconsistencyTotal
	}
	var with, without time.Duration
	for i := 0; i < b.N; i++ {
		with += run(false, benchSeed(i, 1))
		without += run(true, benchSeed(i, 1))
	}
	if _, dup := printOnce.LoadOrStore(b.Name(), true); !dup {
		fmt.Printf("\nAblation (gap recovery, 15%% loss): inconsistency with retransmission: %v; without: %v\n",
			with/time.Duration(b.N), without/time.Duration(b.N))
	}
	hi, lo := with, without
	if lo > hi {
		hi, lo = lo, hi
	}
	if lo*5 < hi*4 { // more than 25% apart
		b.Fatalf("gap-recovery ablation diverged beyond noise: with=%v without=%v", with, without)
	}
}

// BenchmarkAblationDecoupling compares RTPB's decoupled update scheduling
// against write-through replication: write-through couples transmission
// load to client write rate, inflating client response time under load.
func BenchmarkAblationDecoupling(b *testing.B) {
	run := func(mode core.SchedulingMode, seed int64) time.Duration {
		r, err := experiments.Run(experiments.Params{
			Seed:             seed,
			Delay:            2 * time.Millisecond,
			Jitter:           time.Millisecond,
			Ell:              5 * time.Millisecond,
			Objects:          32,
			ObjectSize:       64,
			ClientPeriod:     10 * time.Millisecond, // fast writers
			DeltaP:           50 * time.Millisecond,
			Window:           70 * time.Millisecond,
			Scheduling:       mode,
			AdmissionControl: false, // same offered load on both sides
			Duration:         benchDuration,
		})
		if err != nil {
			b.Fatal(err)
		}
		return time.Duration(r.Response.Mean())
	}
	var decoupled, writeThrough time.Duration
	for i := 0; i < b.N; i++ {
		decoupled += run(core.ScheduleNormal, benchSeed(i, 1))
		writeThrough += run(core.ScheduleWriteThrough, benchSeed(i, 1))
	}
	if _, dup := printOnce.LoadOrStore(b.Name(), true); !dup {
		fmt.Printf("\nAblation (decoupling, 32 fast writers): mean response decoupled: %v; write-through: %v\n",
			decoupled/time.Duration(b.N), writeThrough/time.Duration(b.N))
	}
	if writeThrough <= decoupled {
		b.Fatalf("write-through (%v) not slower than decoupled scheduling (%v)", writeThrough, decoupled)
	}
}

// BenchmarkHybridCriticalObjects measures the hybrid active/passive path
// (the paper's §7 future work): writes to Critical objects wait for
// backup acknowledgement, paying a round trip that plain RTPB objects
// avoid. Run on a 3ms link, the critical path must cost at least 2×3ms
// more than the passive path.
func BenchmarkHybridCriticalObjects(b *testing.B) {
	var critMean, plainMean time.Duration
	for i := 0; i < b.N; i++ {
		cluster, err := newHybridCluster(benchSeed(i, 1))
		if err != nil {
			b.Fatal(err)
		}
		var crit, plain trace.DurationStats
		writer := cluster.WriteEvery("crit", 40*time.Millisecond, func(k int) []byte { return []byte{byte(k)} })
		writer2 := cluster.WriteEvery("plain", 40*time.Millisecond, func(k int) []byte { return []byte{byte(k)} })
		cluster.Primary.OnClientDone = func(name string, lat time.Duration) {
			if name == "crit" {
				crit.Add(lat)
			} else {
				plain.Add(lat)
			}
		}
		cluster.RunFor(benchDuration)
		writer.Stop()
		writer2.Stop()
		critMean = crit.Mean()
		plainMean = plain.Mean()
	}
	if _, dup := printOnce.LoadOrStore(b.Name(), true); !dup {
		fmt.Printf("\nHybrid path: mean response critical=%v (acked), plain=%v (passive)\n",
			critMean, plainMean)
	}
	// The acked path pays ~one round trip (2×3ms) more; allow 1ms of
	// queueing overlap between the two measurements.
	if critMean < plainMean+5*time.Millisecond {
		b.Fatalf("critical mean %v not ≈ a round trip above plain %v", critMean, plainMean)
	}
}

func newHybridCluster(seed int64) (*rtpbSimCluster, error) {
	cluster, err := newSimCluster(seed)
	if err != nil {
		return nil, err
	}
	critSpec := demoObjectSpec("crit")
	critSpec.Critical = true
	if d := cluster.Register(critSpec); !d.Accepted {
		return nil, fmt.Errorf("crit rejected: %s", d.Reason)
	}
	if d := cluster.Register(demoObjectSpec("plain")); !d.Accepted {
		return nil, fmt.Errorf("plain rejected: %s", d.Reason)
	}
	return cluster, nil
}

// BenchmarkComparisonActiveVsPassive regenerates the passive-vs-active
// response-time comparison (the quantitative form of the paper's
// Section 6.1 argument and the substrate for its hybrid future work).
func BenchmarkComparisonActiveVsPassive(b *testing.B) {
	benchFigure(b, experiments.CompareFigure)
}

// BenchmarkLivePhaseVariance regenerates the live phase-variance
// measurement: the jitter of the running primary's update transmissions
// (Definition 1 on the real protocol) against the Inequality 2.1 bound.
func BenchmarkLivePhaseVariance(b *testing.B) {
	benchFigure(b, experiments.PhaseVarianceFigure)
}

// BenchmarkProtocolThroughput measures raw protocol cost: virtual-time
// simulation events processed per wall second for a standard cluster.
func BenchmarkProtocolThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(experiments.Params{
			Seed:             benchSeed(i, 1),
			Delay:            2 * time.Millisecond,
			Jitter:           time.Millisecond,
			Loss:             0.05,
			Ell:              5 * time.Millisecond,
			Objects:          16,
			ObjectSize:       256,
			ClientPeriod:     20 * time.Millisecond,
			DeltaP:           30 * time.Millisecond,
			Window:           60 * time.Millisecond,
			Scheduling:       core.ScheduleNormal,
			AdmissionControl: true,
			Duration:         benchDuration,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func randomBenchTaskSet(rng *rand.Rand, n int, maxUtil float64) sched.TaskSet {
	periods := []time.Duration{
		4 * time.Millisecond, 5 * time.Millisecond, 8 * time.Millisecond,
		10 * time.Millisecond, 16 * time.Millisecond, 20 * time.Millisecond,
		25 * time.Millisecond, 40 * time.Millisecond, 50 * time.Millisecond,
	}
	ts := make(sched.TaskSet, 0, n)
	remaining := maxUtil
	for i := 0; i < n; i++ {
		share := remaining / float64(n-i) * (0.5 + rng.Float64())
		if share > remaining {
			share = remaining
		}
		p := periods[rng.Intn(len(periods))]
		e := time.Duration(share * float64(p)).Truncate(100 * time.Microsecond)
		if e < 100*time.Microsecond {
			e = 100 * time.Microsecond
		}
		if e > p {
			e = p
		}
		remaining -= float64(e) / float64(p)
		if remaining < 0 {
			remaining = 0
		}
		ts = append(ts, sched.Task{Name: fmt.Sprintf("t%d", i), Period: p, WCET: e})
	}
	return ts
}

// Silence unused-import lint if temporal constants ever become unused in
// future edits; the compile-time reference documents the dependency of
// the harness on the temporal model.
var _ = temporal.Theorem5
