package rtpb

import (
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/netsim"
)

// SimClusterConfig parameterizes a turnkey simulated RTPB deployment.
type SimClusterConfig struct {
	// Seed drives the simulated network's randomness.
	Seed int64
	// Link shapes the primary↔backup link.
	Link LinkParams
	// Ell is ℓ for admission control; defaults to the link's worst-case
	// one-way delay (or 1ms for an ideal link).
	Ell time.Duration
	// Scheduling selects the update-scheduling mode.
	Scheduling SchedulingMode
	// DisableAdmissionControl admits everything (for experiments).
	DisableAdmissionControl bool
	// SlackFactor overrides the update-period slack (default 0.5).
	SlackFactor float64
	// Costs overrides the CPU cost model.
	Costs CostModel
	// SchedTest overrides the admission schedulability test.
	SchedTest SchedTest
}

// SimCluster is a primary and backup pair on a simulated network under a
// virtual clock: the deployment used by the examples and the benchmark
// harness. Everything runs deterministically in virtual time; advance it
// with RunFor.
type SimCluster struct {
	// Clock is the cluster's virtual clock.
	Clock *SimClock
	// Net is the simulated fabric ("primary" and "backup" hosts).
	Net *netsim.Network
	// Primary and Backup are the two replicas.
	Primary *Primary
	Backup  *Backup

	primaryEP   *netsim.Endpoint
	backupEP    *netsim.Endpoint
	primaryPort *PortProtocol
	backupPort  *PortProtocol
}

// PrimaryHost and BackupHost are the simulated host names of a SimCluster.
const (
	PrimaryHost = "primary"
	BackupHost  = "backup"
)

// NewSimCluster builds the two-replica deployment: simulated fabric, an
// x-kernel stack per host, and the RTPB primary and backup wired
// together on the well-known port.
func NewSimCluster(cfg SimClusterConfig) (*SimCluster, error) {
	clk := clock.NewSim()
	net := netsim.New(clk, cfg.Seed)
	if err := net.SetDefaultLink(cfg.Link); err != nil {
		return nil, err
	}
	pEP, err := net.Endpoint(PrimaryHost)
	if err != nil {
		return nil, err
	}
	bEP, err := net.Endpoint(BackupHost)
	if err != nil {
		return nil, err
	}
	pPort, err := NewStack(pEP)
	if err != nil {
		return nil, err
	}
	bPort, err := NewStack(bEP)
	if err != nil {
		return nil, err
	}
	ell := cfg.Ell
	if ell == 0 {
		ell = cfg.Link.Bound()
		if ell == 0 {
			ell = time.Millisecond
		}
	}
	primary, err := core.NewPrimary(core.Config{
		Clock:                   clk,
		Port:                    pPort,
		Peer:                    Addr(BackupHost + ":7000"),
		Ell:                     ell,
		Scheduling:              cfg.Scheduling,
		DisableAdmissionControl: cfg.DisableAdmissionControl,
		SlackFactor:             cfg.SlackFactor,
		Costs:                   cfg.Costs,
		SchedTest:               cfg.SchedTest,
	})
	if err != nil {
		return nil, fmt.Errorf("rtpb: sim primary: %w", err)
	}
	backup, err := core.NewBackup(core.Config{
		Clock: clk,
		Port:  bPort,
		Peer:  Addr(PrimaryHost + ":7000"),
		Ell:   ell,
	})
	if err != nil {
		return nil, fmt.Errorf("rtpb: sim backup: %w", err)
	}
	return &SimCluster{
		Clock:       clk,
		Net:         net,
		Primary:     primary,
		Backup:      backup,
		primaryEP:   pEP,
		backupEP:    bEP,
		primaryPort: pPort,
		backupPort:  bPort,
	}, nil
}

// PrimaryPort exposes the primary host's port protocol, for wiring
// additional protocols or re-homing a replica after failover.
func (s *SimCluster) PrimaryPort() *PortProtocol { return s.primaryPort }

// BackupPort exposes the backup host's port protocol. A promotion on the
// backup host (failover.Promote) builds the new primary on this stack.
func (s *SimCluster) BackupPort() *PortProtocol { return s.backupPort }

// RunFor advances virtual time by d, running everything that falls due.
func (s *SimCluster) RunFor(d time.Duration) { s.Clock.RunFor(d) }

// Register registers an object on the primary and lets the registration
// propagate to the backup.
func (s *SimCluster) Register(spec ObjectSpec) Decision {
	d := s.Primary.Register(spec)
	if d.Accepted {
		s.RunFor(10 * time.Millisecond)
	}
	return d
}

// WriteEvery starts a periodic client writer for the named object on the
// cluster's original primary. The payload function receives the 1-based
// write counter. Stop the returned task to halt the writer.
func (s *SimCluster) WriteEvery(name string, period time.Duration, payload func(i int) []byte) *clock.Periodic {
	return s.WriteEveryTo(s.Primary, name, period, payload)
}

// WriteEveryTo starts a periodic client writer against an arbitrary
// primary — for example one promoted from the backup after a failover.
func (s *SimCluster) WriteEveryTo(p *Primary, name string, period time.Duration, payload func(i int) []byte) *clock.Periodic {
	i := 0
	return clock.NewPeriodic(s.Clock, 0, period, func() {
		i++
		p.ClientWrite(name, payload(i), nil)
	})
}

// AddHost attaches a fresh host to the simulated fabric and returns its
// protocol stack, ready for a replacement replica (failover recruitment).
func (s *SimCluster) AddHost(host string) (*PortProtocol, error) {
	ep, err := s.Net.Endpoint(host)
	if err != nil {
		return nil, err
	}
	return NewStack(ep)
}

// CrashPrimary simulates a primary host failure: the replica stops and
// its network endpoint goes silent.
func (s *SimCluster) CrashPrimary() {
	s.Primary.Stop()
	s.primaryEP.SetDown(true)
}

// CrashBackup simulates a backup host failure.
func (s *SimCluster) CrashBackup() {
	s.Backup.Stop()
	s.backupEP.SetDown(true)
}

// Partition cuts the primary↔backup link; Heal restores it.
func (s *SimCluster) Partition() { s.Net.Partition(PrimaryHost, BackupHost) }

// Heal restores the primary↔backup link to the default parameters.
func (s *SimCluster) Heal() { s.Net.Heal(PrimaryHost, BackupHost) }
